//! Scheduling-runtime benchmark: the PR-3 eager issue path versus the
//! `tcu-sched` deferred path on the blocked Theorem 2 flow. Emits
//! machine-readable `BENCH_sched.json` (override with `--out <path>`);
//! `--quick` shrinks sizes/reps for the CI smoke run.
//!
//! Scheduling is a plan-once / run-many runtime (the graph and its
//! schedule are reusable across data bindings), so the timed scheduled
//! flow is the *run*: recording + planning cost is measured once and
//! reported separately as `plan_ns`.
//!
//! Eight case families:
//!
//! * `packcache d=<d>` — the E2 hot path (`√m = 16`, strict full-width
//!   blocks, `f64`): eager `dense::multiply` re-reads each `A` strip
//!   through page-strided views once per block column, while the
//!   scheduled run tags operands so `HostExecutor`'s pack cache packs
//!   each strip once per run and re-uses it `d/√m` times. Model charges
//!   are identical (nothing can coalesce at full width); the win is
//!   host wall-clock and packed-strip traffic.
//! * `coalesce d=<d>` — the same flow recorded in 16-wide blocks but
//!   planned for a `√m = 32` unit: width+inner merging fuses each 2×2
//!   group of narrow ops into one full-footprint invocation — 4× fewer
//!   invocations and streamed rows *in simulated time*, the model's own
//!   cost terms.
//! * `plan d=512 ops=1024` — *planner wall time* on the canonical
//!   1024-op coalesce graph, coalescing off vs on. The ns/op columns
//!   divide each planner's wall by the ops *it emits* (1024 plain, 256
//!   coalesced) — a plan-only denominator, so `speedup_wall` here is
//!   per-emitted-op plan cost and never mixes planner wall with a run
//!   config. `plan_ms` is still the full coalescing-planner call. Runs
//!   at full size even under `--quick`, so CI can diff the committed
//!   `plan_ms` baseline and catch a regression of the
//!   bucketed-hazard-index + batched-merge planning cost (the PR-4
//!   all-pairs scan took ≈92 ms here).
//! * `strassen d=<d> base=8 memo<=N` — the recursive flow with a
//!   sub-footprint base: the scheduler width-merges leaf-product pairs,
//!   halving base invocations versus the eager recursion at the same
//!   base. This case times the whole scheduled call; recursions at or
//!   below `N` leaf products re-use a memoized plan
//!   (`tcu_algos::plan_memo`), so record + plan cost — formerly the
//!   dominant wall cost here, the 0.158× cliff — is paid once in the
//!   warmup and the timed rounds run plan-free.
//! * `parwave d=<d> units=<p>` — the serial scheduled run versus the
//!   wave-barrier driver (`run_wave`, pinned: this family measures
//!   *that* driver regardless of `TCU_EXEC_MODE`) on `p` threaded units
//!   over the packcache-style accumulation graph (each wave holds
//!   `d/√m` independent column-block products). Results are asserted
//!   bit-identical before timing; the `speedup_wall` of these cases is
//!   what `bench_diff` gates on runners whose core count matches the
//!   committed baseline's (a 1-core recording honestly shows ≤1× and is
//!   skipped elsewhere).
//! * `dataflow d=<d> units=<p>` — the same workload and serial rival,
//!   but the scheduled side runs the barrier-free dataflow driver
//!   (`run_dataflow`, pinned). Directly comparable row-for-row with
//!   `parwave`: the gap between the two families *is* the wave-barrier
//!   dispatch overhead. On a 1-core runner the driver resolves to its
//!   inline executor, so `sched ns/op` collapses to ≈ the serial run —
//!   the per-op dispatch cost the barriers were hiding. Their
//!   `sched_efficiency` (the structural bound over the dataflow
//!   makespan) is a *hard* `bench_diff` gate — deterministic, so >10%
//!   drops fail even in informational mode.
//! * `faults d=<d> units=<p> rate=<r>` — `run_wave` on plain
//!   executors versus the fault-tolerant `try_run_wave` (pinned to the
//!   wave driver, whose recovery accounting is fully replayable) on
//!   `FaultyExecutor`s injecting `r` transient faults per mille (plus a
//!   permanent victim when `r > 0`). `rate=0` pins the fault-free
//!   containment overhead in wall-clock (the gated number); nonzero
//!   rates chart recovery's simulated cost — retry backoff + requeue
//!   makespan — against fault density. Elements and `Stats` are
//!   asserted byte-identical before timing (the recovery contract).
//! * `gauss d=<d>` / `closure n=<n>` — the panel-re-streaming paper
//!   workloads on their scheduled fast paths
//!   (`gauss::eliminate_scheduled`, `closure::transitive_scheduled`):
//!   model charges are asserted identical to eager. With plans
//!   memoized + compiled once (structural shape-hash sharing) and the
//!   closure `D`-stage chunked to keep its product panel
//!   cache-resident, both run at or above eager wall at the committed
//!   sizes — `bench_diff` gates their `speedup_wall` against an
//!   absolute 1.0× floor (ROADMAP item 2's target). Gauss keeps the
//!   pack cache on (its pivot panels are *strided* re-streamed
//!   operands; the pack-ratio column shows one pack per plan); closure
//!   runs cache-off here, see `bench_closure`.
//!
//! Every variant is checked element-equal against its eager counterpart
//! before timing, so the numbers can never come from a wrong schedule.
//! The eager-vs-sched serial cases time both rivals through
//! `time_pair_ns` (order-alternating interleaved rounds), so a
//! frequency-drift episode or a slot-order warmup artifact cannot
//! manufacture a ratio.

use tcu_algos::{closure, dense, gauss, strassen, workloads};
use tcu_core::{Stats, TcuMachine};
use tcu_linalg::Matrix;

const SQRT_M: usize = 16;

fn workload(r: usize, c: usize, seed: u64) -> Matrix<f64> {
    Matrix::from_fn(r, c, |i, j| {
        let x = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(seed);
        (x % 4096) as f64 / 2048.0 - 1.0
    })
}

/// Plan-memo cost split for the cases whose scheduled entry point plans
/// inside the timed call (gauss/closure/strassen). `first_plan_ns` is
/// the planning wall time the *first* (warmup) call paid — the cost the
/// old single `plan_ns: 0.0` field hid — and `amortized_plan_ns` is the
/// planning time per timed rep once the structural memo is warm (≈ 0
/// when plan sharing works). The hit/miss counters are cumulative over
/// the case (warmup + timed reps), so `plan_cache_hits > 0` is the CI
/// witness that equal-shape stages actually shared a plan.
#[derive(Default)]
struct MemoCost {
    first_plan_ns: f64,
    amortized_plan_ns: f64,
    plan_cache_hits: u64,
    plan_cache_misses: u64,
}

impl MemoCost {
    /// Capture the memo cost of one benched case: `warm` is the stats
    /// snapshot after the correctness/warmup call (memo cold before
    /// it), `total` the snapshot after the timed reps.
    fn from_stats(
        warm: tcu_algos::plan_memo::PlanCacheStats,
        total: tcu_algos::plan_memo::PlanCacheStats,
        reps: u32,
    ) -> Self {
        Self {
            first_plan_ns: warm.plan_ns as f64,
            amortized_plan_ns: (total.plan_ns - warm.plan_ns) as f64 / f64::from(reps.max(1)),
            plan_cache_hits: total.hits,
            plan_cache_misses: total.misses,
        }
    }
}

struct Case {
    name: String,
    d: usize,
    sqrt_m: usize,
    /// Worker threads (= planned units) the scheduled flow ran with; 1
    /// for the serial cases. `bench_diff` gates `speedup_wall` for
    /// cases with `threads > 1` only when the runner's core count
    /// matches the baseline's.
    threads: usize,
    reps: u32,
    eager_ns: f64,
    sched_ns: f64,
    plan_ns: f64,
    eager_invocations: u64,
    sched_invocations: u64,
    eager_sim_time: u64,
    sched_sim_time: u64,
    pack_lookups: u64,
    pack_misses: u64,
    packed_bytes: u64,
    memo: MemoCost,
    /// Longest cost-weighted hazard chain of the scheduled plan — the
    /// lower bound no unit count can beat (0 when the case's plan lives
    /// inside an algos entry point and is not held here).
    critical_path: u64,
    /// `max(critical_path, ⌈work/units⌉) / makespan` of the plan: 1.0
    /// means the LPT waves hit the structural lower bound (0.0 when the
    /// plan is not held here). For the `dataflow` cases this is
    /// [`tcu_sched::Schedule::dataflow_efficiency`] — the same bound
    /// over the barrier-free placement's makespan.
    sched_efficiency: f64,
    /// Planned parallel wall over the cost-weighted critical path —
    /// how far the schedule sits from the no-units-can-help floor
    /// (1.0 = critical-path bound; 0.0 when the plan is not held
    /// here). For the `dataflow` cases the numerator is the dataflow
    /// makespan, for every other planned case the wave makespan.
    makespan_over_cp: f64,
}

impl Case {
    /// Packed-strip traffic ratio: what a pack-per-invocation policy
    /// moves divided by what the cache moved (1.0 when caching is not
    /// part of the case).
    fn pack_ratio(&self) -> f64 {
        if self.pack_misses == 0 {
            1.0
        } else {
            self.pack_lookups as f64 / self.pack_misses as f64
        }
    }
}

/// `makespan / critical_path` guarded against plan-less cases.
fn over_cp(makespan: u64, critical_path: u64) -> f64 {
    if critical_path == 0 {
        0.0
    } else {
        makespan as f64 / critical_path as f64
    }
}

/// Eager vs scheduled+pack-cache on the strict `√m = 16` blocked flow.
fn bench_packcache(d: usize, quick: bool) -> Case {
    use tcu_core::TensorOp;
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let a = workload(d, d, 1);
    let b = workload(d, d, 2);
    let s = SQRT_M;
    let q = d / s;
    // Derived capacity: one run streams `q` strips of `A`, so the
    // heuristic's `2·(d/√m)` bound keeps them all resident.
    let pack_cap = tcu_core::pack_cache_capacity((d, d), s, 1);

    let eager_run = || {
        let mut mach = TcuMachine::model(s * s, 0);
        let c = dense::multiply(&mut mach, &a, &b);
        (c, mach.stats().clone())
    };
    // Correctness + accounting parity through the algos-level entry
    // point (which also bills the CPU final summation).
    let (c_eager, eager_stats) = eager_run();
    let (c_sched, sched_stats, cache) = {
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(pack_cap);
        let c = dense::multiply_scheduled(&mut mach, &a, &b);
        let cache = mach.executor().pack_cache_stats().expect("cache enabled");
        (c, mach.stats().clone(), cache)
    };
    assert_eq!(c_eager, c_sched, "scheduled result must equal eager");
    assert_eq!(
        eager_stats, sched_stats,
        "full-width blocks must charge identically"
    );

    // Timed flow: record + plan once, then run per rep (the runtime's
    // plan-once / run-many contract).
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let record = |g: &mut OpGraph| {
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp::mul_acc(d, s),
                    OperandRef::new(ab, 0, k * s, d, s),
                    OperandRef::new(bb, k * s, j * s, s, s),
                    OperandRef::new(cb, 0, j * s, d, s),
                );
            }
        }
    };
    record(&mut g);
    let unit = *TcuMachine::model(s * s, 0).unit();
    let plan = Scheduler::new().plan(&g, &unit);
    let plan_ns = tcu_bench::time_ns(if quick { 2 } else { 5 }, || {
        // Ids are registration indices, so the handles `record` closes
        // over transfer to a fresh graph with the same buffer layout.
        let mut g2 = OpGraph::new();
        let _ = (
            g2.buffer("A", d, d),
            g2.buffer("B", d, d),
            g2.buffer("C", d, d),
        );
        record(&mut g2);
        Scheduler::new().plan(&g2, &unit)
    });

    let sched_once = || {
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(pack_cap);
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        c
    };
    assert_eq!(sched_once(), c_eager, "planned run must equal eager");

    let reps: u32 = if quick { 3 } else { 10 };
    let (eager_ns, sched_ns) = tcu_bench::time_pair_ns(reps, || eager_run().0, sched_once);
    Case {
        name: format!("packcache d={d}"),
        d,
        sqrt_m: s,
        threads: 1,
        reps,
        eager_ns,
        sched_ns,
        plan_ns,
        eager_invocations: eager_stats.tensor_calls,
        sched_invocations: sched_stats.tensor_calls,
        eager_sim_time: eager_stats.time(),
        sched_sim_time: sched_stats.time(),
        pack_lookups: cache.lookups,
        pack_misses: cache.misses,
        packed_bytes: cache.packed_bytes,
        memo: MemoCost::default(),
        critical_path: plan.critical_path(),
        sched_efficiency: plan.sched_efficiency(),
        makespan_over_cp: over_cp(plan.makespan(), plan.critical_path()),
    }
}

/// Narrow (block-16) recording planned for a `√m = 32` unit: the
/// coalescing win in the model's own cost terms. The eager reference is
/// the same narrow stream charged without coalescing.
fn bench_coalesce(d: usize, quick: bool) -> Case {
    use tcu_core::TensorOp;
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let blk = 16usize;
    let s = 32usize;
    let l = 10_000u64;
    let a = workload(d, d, 3);
    let b = workload(d, d, 4);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / blk;
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    accumulate: true,
                    ..TensorOp::padded(d, blk, blk)
                },
                OperandRef::new(ab, 0, k * blk, d, blk),
                OperandRef::new(bb, k * blk, j * blk, blk, blk),
                OperandRef::new(cb, 0, j * blk, d, blk),
            );
        }
    }

    let unit = tcu_core::ModelTensorUnit::new(s * s, l);
    let plan_eager = Scheduler::new().without_coalescing().plan(&g, &unit);
    let plan_coal = Scheduler::new().plan(&g, &unit);
    let plan_ns = tcu_bench::time_ns(if quick { 2 } else { 5 }, || {
        Scheduler::new().plan(&g, &unit)
    });

    let run = |plan: &tcu_sched::Schedule| {
        let mut mach = TcuMachine::with_executor(unit, tcu_core::HostExecutor::new());
        // Derived from the merged-op width (√m = 32 after coalescing):
        // 2·(d/32) = d/16 entries, the old hand-picked `q`.
        mach.executor_mut()
            .enable_pack_cache(tcu_core::pack_cache_capacity((d, d), s, 1));
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run(&mut mach, &mut env);
        (c, mach.stats().clone())
    };

    let (_, eager_stats) = run(&plan_eager);
    let (c_coal, sched_stats) = run(&plan_coal);
    // f64 + inner merging reassociates per-element sums, so compare to
    // the oracle within round-off rather than bitwise.
    let want = tcu_linalg::kernels::matmul(a.view(), b.view());
    assert!(
        tcu_linalg::ops::max_abs_diff(&c_coal, &want) < 1e-9 * d as f64,
        "coalesced result must match the oracle"
    );

    let reps: u32 = if quick { 3 } else { 10 };
    let (eager_ns, sched_ns) =
        tcu_bench::time_pair_ns(reps, || run(&plan_eager).0, || run(&plan_coal).0);
    Case {
        name: format!("coalesce d={d}"),
        d,
        sqrt_m: s,
        threads: 1,
        reps,
        eager_ns,
        sched_ns,
        plan_ns,
        eager_invocations: eager_stats.tensor_calls,
        sched_invocations: sched_stats.tensor_calls,
        eager_sim_time: eager_stats.time(),
        sched_sim_time: sched_stats.time(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo: MemoCost::default(),
        critical_path: plan_coal.critical_path(),
        sched_efficiency: plan_coal.sched_efficiency(),
        makespan_over_cp: over_cp(plan_coal.makespan(), plan_coal.critical_path()),
    }
}

/// Planner wall time on the canonical 1024-op coalesce graph — always
/// full size, so quick (CI) runs share this case with the committed
/// baseline and `bench_diff` can gate `plan_ms`.
fn bench_plan(quick: bool) -> Case {
    use tcu_core::TensorOp;
    use tcu_sched::{OpGraph, OperandRef, Scheduler};

    let (d, blk, s) = (512usize, 16usize, 32usize);
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / blk;
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp {
                    accumulate: true,
                    ..TensorOp::padded(d, blk, blk)
                },
                OperandRef::new(ab, 0, k * blk, d, blk),
                OperandRef::new(bb, k * blk, j * blk, blk, blk),
                OperandRef::new(cb, 0, j * blk, d, blk),
            );
        }
    }
    assert_eq!(g.len(), 1024);
    let unit = tcu_core::ModelTensorUnit::new(s * s, 10_000);
    let plan_eager = Scheduler::new().without_coalescing().plan(&g, &unit);
    let plan_coal = Scheduler::new().plan(&g, &unit);
    assert_eq!(plan_coal.invocations() * 4, plan_eager.invocations());

    let reps: u32 = if quick { 3 } else { 10 };
    let eager_total_ns = tcu_bench::time_ns(reps, || {
        Scheduler::new().without_coalescing().plan(&g, &unit)
    });
    let sched_total_ns = tcu_bench::time_ns(reps, || Scheduler::new().plan(&g, &unit));
    Case {
        name: "plan d=512 ops=1024".to_string(),
        d,
        sqrt_m: s,
        threads: 1,
        reps,
        // For this case both timings *are* planner runs: coalescing off
        // vs on. The per-op numbers divide each planner's wall by the
        // ops *it* emits (1024 plain vs 256 coalesced), so
        // `speedup_wall` compares plan cost per scheduled op — a
        // plan-only denominator — instead of conflating total planner
        // wall with the coalesce case's 4×-smaller run config. plan_ns
        // (hence plan_ms) still records the full coalescing-planner
        // call, the number the CI gate pins.
        eager_ns: eager_total_ns / plan_eager.ops() as f64,
        sched_ns: sched_total_ns / plan_coal.ops() as f64,
        plan_ns: sched_total_ns,
        eager_invocations: plan_eager.invocations(),
        sched_invocations: plan_coal.invocations(),
        eager_sim_time: plan_eager.makespan(),
        sched_sim_time: plan_coal.makespan(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo: MemoCost::default(),
        critical_path: plan_coal.critical_path(),
        sched_efficiency: plan_coal.sched_efficiency(),
        makespan_over_cp: over_cp(plan_coal.makespan(), plan_coal.critical_path()),
    }
}

/// Eager vs scheduled Gaussian elimination (the Theorem 4 flow): the
/// per-stage pivot panel streamed against every trailing block column.
fn bench_gauss(d: usize, quick: bool) -> Case {
    use tcu_algos::plan_memo::{plan_cache_stats, reset_plan_cache_stats};
    use tcu_linalg::decomp::{augmented_from, diag_dominant};

    let s = SQRT_M;
    let a = diag_dominant(d - 1, d as u64);
    let b: Vec<f64> = (0..d - 1).map(|i| (i % 5) as f64 - 2.0).collect();
    let c0 = augmented_from(&a, &b);

    let eager_run = || {
        let mut mach = TcuMachine::model(s * s, 0);
        let mut x = c0.clone();
        gauss::ge_forward(&mut mach, &mut x);
        (x, mach.stats().clone())
    };
    // The pivot panel is the only tagged left operand live at a time;
    // its dims (d rows, √m-wide stages) derive a capacity of 2.
    let pack_cap = tcu_core::pack_cache_capacity((d, s), s, 1);
    let sched_run = || {
        let mut mach = TcuMachine::model(s * s, 0);
        mach.executor_mut().enable_pack_cache(pack_cap);
        let mut x = c0.clone();
        gauss::eliminate_scheduled(&mut mach, &mut x);
        let cache = mach.executor().pack_cache_stats().expect("cache enabled");
        (x, mach.stats().clone(), cache)
    };
    reset_plan_cache_stats();
    let (x_eager, eager_stats) = eager_run();
    let (x_sched, sched_stats, cache) = sched_run();
    let warm = plan_cache_stats();
    assert_eq!(x_eager, x_sched, "scheduled elimination must equal eager");
    assert_eq!(eager_stats, sched_stats, "charges must be identical");

    let reps: u32 = if quick { 2 } else { 5 };
    let (eager_ns, sched_ns) = tcu_bench::time_pair_ns(reps, || eager_run().0, || sched_run().0);
    let memo = MemoCost::from_stats(warm, plan_cache_stats(), reps);
    Case {
        name: format!("gauss d={d}"),
        d,
        sqrt_m: s,
        threads: 1,
        reps,
        eager_ns,
        sched_ns,
        // Record + plan happen per stage inside the timed call; the
        // memo split below reports what that actually cost (first call
        // plans, warm reps ride the structural memo).
        plan_ns: 0.0,
        eager_invocations: eager_stats.tensor_calls,
        sched_invocations: sched_stats.tensor_calls,
        eager_sim_time: eager_stats.time(),
        sched_sim_time: sched_stats.time(),
        pack_lookups: cache.lookups,
        pack_misses: cache.misses,
        packed_bytes: cache.packed_bytes,
        memo,
        critical_path: 0,
        sched_efficiency: 0.0,
        makespan_over_cp: 0.0,
    }
}

/// Eager vs scheduled transitive closure (the Theorem 5 flow).
fn bench_closure(n: usize, quick: bool) -> Case {
    use rand::{rngs::StdRng, SeedableRng};
    use tcu_algos::plan_memo::{plan_cache_stats, reset_plan_cache_stats};

    let s = SQRT_M;
    let mut rng = StdRng::seed_from_u64(n as u64);
    let adj = workloads::random_digraph(n, 2.0 / n as f64, &mut rng);

    let eager_run = || {
        let mut mach = TcuMachine::model(s * s, 0);
        let mut x = adj.clone();
        closure::transitive_closure(&mut mach, &mut x);
        (x, mach.stats().clone())
    };
    // No pack cache here: closure's streamed left operand (the stacked
    // `tall` strip) is already contiguous, so a pack is an identity
    // copy — the row-major panel layout of a contiguous MR-aligned
    // matrix is the matrix itself — and the per-op cache lookups are
    // pure overhead. The cache earns its keep on *strided* re-streamed
    // panels: the packcache and gauss cases.
    let sched_run = || {
        let mut mach = TcuMachine::model(s * s, 0);
        let mut x = adj.clone();
        closure::transitive_scheduled(&mut mach, &mut x);
        (x, mach.stats().clone())
    };
    reset_plan_cache_stats();
    let (x_eager, eager_stats) = eager_run();
    let (x_sched, sched_stats) = sched_run();
    let warm = plan_cache_stats();
    assert_eq!(x_eager, x_sched, "scheduled closure must equal eager");
    assert_eq!(eager_stats, sched_stats, "charges must be identical");

    let reps: u32 = if quick { 2 } else { 5 };
    let (eager_ns, sched_ns) = tcu_bench::time_pair_ns(reps, || eager_run().0, || sched_run().0);
    let memo = MemoCost::from_stats(warm, plan_cache_stats(), reps);
    Case {
        name: format!("closure n={n}"),
        d: n,
        sqrt_m: s,
        threads: 1,
        reps,
        eager_ns,
        sched_ns,
        plan_ns: 0.0,
        eager_invocations: eager_stats.tensor_calls,
        sched_invocations: sched_stats.tensor_calls,
        eager_sim_time: eager_stats.time(),
        sched_sim_time: sched_stats.time(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo,
        critical_path: 0,
        sched_efficiency: 0.0,
        makespan_over_cp: 0.0,
    }
}

/// Eager vs scheduled recursive multiplication at a sub-footprint base.
fn bench_strassen(d: usize, quick: bool) -> Case {
    use tcu_algos::plan_memo::{plan_cache_stats, reset_plan_cache_stats};

    let base = 8usize;
    let l = 1000u64;
    let ai = Matrix::from_fn(d, d, |i, j| ((i * 67 + j * 29) % 41) as i64 - 20);
    let bi = Matrix::from_fn(d, d, |i, j| ((i * 31 + j * 17) % 37) as i64 - 18);

    let eager_run = || {
        let mut mach = TcuMachine::model(SQRT_M * SQRT_M, l);
        let c = strassen::multiply_recursive_with_base(&mut mach, &ai, &bi, base);
        (c, mach.stats().clone())
    };
    // No pack cache for this case: the leaves are base×base (8×8)
    // tiles, which `matmul_into` dispatches to a const-dimension kernel
    // the generic packed micro-kernel cannot beat, and each tile is
    // re-read only ~4 times — the per-op cache lookup costs more than
    // the re-reads save. Packing pays off for *strided* panels
    // re-streamed many times (gauss), not sub-footprint tiles.
    let sched_run = || {
        let mut mach = TcuMachine::model(SQRT_M * SQRT_M, l);
        let c = strassen::multiply_recursive_scheduled_with_base(&mut mach, &ai, &bi, base);
        (c, mach.stats().clone())
    };
    reset_plan_cache_stats();
    let (c_eager, eager_stats): (Matrix<i64>, Stats) = eager_run();
    let (c_sched, sched_stats) = sched_run();
    let warm = plan_cache_stats();
    assert_eq!(c_eager, c_sched, "scheduled recursion must equal eager");

    let reps: u32 = if quick { 2 } else { 5 };
    let (eager_ns, sched_ns) = tcu_bench::time_pair_ns(reps, || eager_run().0, || sched_run().0);
    let memo = MemoCost::from_stats(warm, plan_cache_stats(), reps);
    Case {
        // The memo bound is part of the name: plans for recursions at
        // or below `PLAN_MEMO_MAX_LEAVES` leaves are cached across
        // calls (the fix for this case's old planning-wall cliff), so a
        // change to the threshold re-keys the baseline on purpose.
        name: format!(
            "strassen d={d} base={base} memo<={}",
            strassen::PLAN_MEMO_MAX_LEAVES
        ),
        d,
        sqrt_m: SQRT_M,
        threads: 1,
        reps,
        eager_ns,
        sched_ns,
        // Recording + planning is inside sched_ns for this case (the
        // algos entry point owns the graph); see the module docs.
        plan_ns: 0.0,
        eager_invocations: eager_stats.tensor_calls,
        sched_invocations: sched_stats.tensor_calls,
        eager_sim_time: eager_stats.time(),
        sched_sim_time: sched_stats.time(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo,
        critical_path: 0,
        sched_efficiency: 0.0,
        makespan_over_cp: 0.0,
    }
}

/// Serial scheduled run vs `run_parallel` on `units` threaded units —
/// the tentpole's wave-parallel wall-clock case. The graph is the
/// packcache accumulation flow: each of the `q` waves holds `q`
/// independent column-block products, which the planner LPT-partitions
/// across units and the wave driver executes on real threads. Results
/// are asserted bit-identical to the serial scheduled run before
/// timing; `speedup_wall` (eager = serial scheduled run here) is the
/// number `bench_diff` gates when the runner's core count matches the
/// baseline's.
fn bench_parwave(d: usize, units: usize, quick: bool) -> Case {
    use tcu_core::{ModelTensorUnit, ParallelTcuMachine, TensorOp};
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let s = SQRT_M;
    let q = d / s;
    let a = workload(d, d, 5);
    let b = workload(d, d, 6);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp::mul_acc(d, s),
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }
    let unit = ModelTensorUnit::new(s * s, 0);
    let plan_serial = Scheduler::new().plan(&g, &unit);
    let plan_par = Scheduler::new().with_units(units).plan(&g, &unit);

    let serial_run = || {
        let mut mach = TcuMachine::with_executor(unit, tcu_core::HostExecutor::new());
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan_serial.run(&mut mach, &mut env);
        (c, mach.stats().clone())
    };
    let par_run = || {
        let mut mach = ParallelTcuMachine::new(unit, units);
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan_par.run_wave(&mut mach, &mut env);
        (c, mach.stats().clone())
    };
    let (c_serial, serial_stats) = serial_run();
    let (c_par, par_stats) = par_run();
    assert_eq!(c_serial, c_par, "run_wave must be bit-identical");
    assert_eq!(serial_stats, par_stats, "charges must be identical");

    let reps: u32 = if quick { 2 } else { 5 };
    let eager_ns = tcu_bench::time_ns(reps, || serial_run().0);
    let sched_ns = tcu_bench::time_ns(reps, || par_run().0);
    Case {
        name: format!("parwave d={d} units={units}"),
        d,
        sqrt_m: s,
        threads: units,
        reps,
        eager_ns,
        sched_ns,
        plan_ns: 0.0,
        eager_invocations: plan_serial.invocations(),
        sched_invocations: plan_par.invocations(),
        // Simulated time is the planned makespan: the multi-unit plan's
        // wave-parallel charge versus the single-unit serial charge.
        eager_sim_time: plan_serial.makespan(),
        sched_sim_time: plan_par.makespan(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo: MemoCost::default(),
        critical_path: plan_par.critical_path(),
        sched_efficiency: plan_par.sched_efficiency(),
        makespan_over_cp: over_cp(plan_par.makespan(), plan_par.critical_path()),
    }
}

/// Serial scheduled run vs the barrier-free dataflow driver
/// (`run_dataflow`) on `units` — same workload and rivalry as
/// `parwave`, so the two families are directly comparable. The
/// placement is resolved at plan time; at run time ops dispatch as
/// their hazard predecessors commit (no wave barriers), with single-op
/// batching elided entirely on one core (the inline executor runs the
/// placement order serial-style). Results are asserted bit-identical to
/// the serial scheduled run before timing. `sched_efficiency` here is
/// `dataflow_efficiency` — the structural lower bound over the
/// *dataflow* makespan — and is a hard lower-is-worse `bench_diff`
/// gate.
fn bench_dataflow(d: usize, units: usize, quick: bool) -> Case {
    use tcu_core::{ModelTensorUnit, ParallelTcuMachine, TensorOp};
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let s = SQRT_M;
    let q = d / s;
    let a = workload(d, d, 5);
    let b = workload(d, d, 6);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp::mul_acc(d, s),
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }
    let unit = ModelTensorUnit::new(s * s, 0);
    let plan_serial = Scheduler::new().plan(&g, &unit);
    let plan_par = Scheduler::new().with_units(units).plan(&g, &unit);

    let serial_run = || {
        let mut mach = TcuMachine::with_executor(unit, tcu_core::HostExecutor::new());
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan_serial.run(&mut mach, &mut env);
        (c, mach.stats().clone())
    };
    let df_run = || {
        let mut mach = ParallelTcuMachine::new(unit, units);
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan_par.run_dataflow(&mut mach, &mut env);
        (c, mach.stats().clone())
    };
    let (c_serial, serial_stats) = serial_run();
    let (c_df, df_stats) = df_run();
    assert_eq!(c_serial, c_df, "run_dataflow must be bit-identical");
    assert_eq!(serial_stats, df_stats, "charges must be identical");

    let reps: u32 = if quick { 2 } else { 5 };
    let eager_ns = tcu_bench::time_ns(reps, || serial_run().0);
    let sched_ns = tcu_bench::time_ns(reps, || df_run().0);
    Case {
        name: format!("dataflow d={d} units={units}"),
        d,
        sqrt_m: s,
        threads: units,
        reps,
        eager_ns,
        sched_ns,
        plan_ns: 0.0,
        eager_invocations: plan_serial.invocations(),
        sched_invocations: plan_par.invocations(),
        // Simulated time: the barrier-free placement's makespan versus
        // the single-unit serial charge.
        eager_sim_time: plan_serial.makespan(),
        sched_sim_time: plan_par.dataflow_makespan(),
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo: MemoCost::default(),
        critical_path: plan_par.critical_path(),
        sched_efficiency: plan_par.dataflow_efficiency(),
        makespan_over_cp: over_cp(plan_par.dataflow_makespan(), plan_par.critical_path()),
    }
}

/// The fault-tolerance overhead and recovery-cost case: `run_parallel`
/// on plain executors versus `try_run_parallel` on [`FaultyExecutor`]s
/// injecting a seeded plan at `rate` transient faults per mille (plus
/// one permanent victim when `rate > 0`). At `rate = 0` the injector is
/// a pure counted pass-through, so `speedup_wall` *is* the fault-free
/// containment overhead (the per-op `catch_unwind` + the wrapper's plan
/// probe) — the number the gate keeps honest. At `rate > 0` the wall
/// ratio shows recovery's host cost and the sim ratio its simulated
/// cost (retry backoff + requeue makespan over the planned makespan),
/// as a function of fault rate. Elements and `Stats` are asserted
/// byte-identical to the fault-free run before timing — the recovery
/// contract, re-checked where the numbers are made.
fn bench_faults(d: usize, units: usize, rate: u32, quick: bool) -> Case {
    use tcu_core::{
        assign_unit_ids, silence_injected_fault_panics, FaultPlan, FaultyExecutor, HostExecutor,
        ModelTensorUnit, ParallelTcuMachine, TensorOp,
    };
    use tcu_sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    silence_injected_fault_panics();
    let s = SQRT_M;
    let q = d / s;
    let a = workload(d, d, 7);
    let b = workload(d, d, 8);

    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let cb = g.buffer("C", d, d);
    for j in 0..q {
        for k in 0..q {
            g.record(
                TensorOp::mul_acc(d, s),
                OperandRef::new(ab, 0, k * s, d, s),
                OperandRef::new(bb, k * s, j * s, s, s),
                OperandRef::new(cb, 0, j * s, d, s),
            );
        }
    }
    let unit = ModelTensorUnit::new(s * s, 0);
    let plan = Scheduler::new().with_units(units).plan(&g, &unit);
    // Horizon covers every execution a unit could perform even after
    // quarantine concentrates the whole stream on one survivor.
    let fplan = if rate == 0 {
        FaultPlan::none()
    } else {
        FaultPlan::seeded(u64::from(rate), units, 2 * plan.invocations(), rate, 1)
    };

    let plain_run = || {
        let mut mach = ParallelTcuMachine::new(unit, units);
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.run_wave(&mut mach, &mut env);
        (c, mach.stats().clone())
    };
    let faulty_run = || {
        let mut mach = ParallelTcuMachine::with_executor(
            unit,
            units,
            FaultyExecutor::new(HostExecutor::new(), fplan.clone()),
        );
        assign_unit_ids(&mut mach);
        let mut c = Matrix::<f64>::zeros(d, d);
        let mut env = ExecEnv::new(&g);
        env.bind_input(ab, a.view());
        env.bind_input(bb, b.view());
        env.bind_output(cb, c.view_mut());
        plan.try_run_wave(&mut mach, &mut env)
            .expect("seeded plans are recoverable");
        drop(env);
        (c, mach.stats().clone(), mach.time())
    };
    let (c_plain, plain_stats) = plain_run();
    let (c_faulty, faulty_stats, faulty_time) = faulty_run();
    assert_eq!(c_plain, c_faulty, "recovery must be element-unobservable");
    assert_eq!(plain_stats, faulty_stats, "recovery must not touch Stats");

    let reps: u32 = if quick { 2 } else { 5 };
    let eager_ns = tcu_bench::time_ns(reps, || plain_run().0);
    let sched_ns = tcu_bench::time_ns(reps, || faulty_run().0);
    Case {
        name: format!("faults d={d} units={units} rate={rate}"),
        d,
        sqrt_m: s,
        threads: units,
        reps,
        eager_ns,
        sched_ns,
        plan_ns: 0.0,
        eager_invocations: plan.invocations(),
        sched_invocations: plan.invocations(),
        // Simulated time: planned makespan vs the faulty run's clock
        // (makespan + retry backoff + requeue makespan) — the recovery
        // cost in the model's own terms.
        eager_sim_time: plan.makespan(),
        sched_sim_time: faulty_time,
        pack_lookups: 0,
        pack_misses: 0,
        packed_bytes: 0,
        memo: MemoCost::default(),
        critical_path: plan.critical_path(),
        sched_efficiency: plan.sched_efficiency(),
        makespan_over_cp: over_cp(plan.makespan(), plan.critical_path()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_sched.json".to_string(), Clone::clone);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let d_block = if quick { 256 } else { 512 };
    let d_str = if quick { 32 } else { 64 };
    let d_ge = if quick { 128 } else { 256 };
    let cases = vec![
        bench_packcache(d_block, quick),
        bench_coalesce(d_block, quick),
        bench_plan(quick),
        bench_strassen(d_str, quick),
        bench_gauss(d_ge, quick),
        bench_closure(d_ge, quick),
        // Always full size (like `plan`), so the CI smoke run shares
        // these case names with the committed baseline and bench_diff
        // can gate the wave-parallel wall speedups.
        bench_parwave(512, 2, quick),
        bench_parwave(512, 4, quick),
        // The barrier-free rival on the same workload/sizes, so wave
        // and dataflow dispatch overhead diff directly. Full size
        // always, same reason as `parwave`.
        bench_dataflow(512, 2, quick),
        bench_dataflow(512, 4, quick),
        // Fault tolerance: rate=0 pins the fault-free containment
        // overhead on the parwave workload (wall speedup ≈ 1), the
        // nonzero rates chart recovery cost against fault density in
        // simulated time. Full size always, same reason as `parwave`.
        bench_faults(512, 4, 0, quick),
        bench_faults(512, 4, 20, quick),
        bench_faults(512, 4, 100, quick),
    ];

    let mut table = tcu_bench::Table::new(
        "BENCH sched — eager issue path vs deferred schedule (host wall-clock + model charges)",
        &[
            "case",
            "reps",
            "eager ns/op",
            "sched ns/op",
            "wall speedup",
            "eager invocs",
            "sched invocs",
            "sim speedup",
            "pack ratio",
            "msp/cp",
            "plan ns",
            "1st plan ms",
            "memo h/m",
        ],
    );
    for c in &cases {
        table.row(vec![
            c.name.clone(),
            c.reps.to_string(),
            tcu_bench::fmt_f(c.eager_ns, 0),
            tcu_bench::fmt_f(c.sched_ns, 0),
            tcu_bench::fmt_f(c.eager_ns / c.sched_ns, 2),
            tcu_bench::fmt_u64(c.eager_invocations),
            tcu_bench::fmt_u64(c.sched_invocations),
            tcu_bench::fmt_f(c.eager_sim_time as f64 / c.sched_sim_time as f64, 2),
            tcu_bench::fmt_f(c.pack_ratio(), 1),
            tcu_bench::fmt_f(c.makespan_over_cp, 2),
            tcu_bench::fmt_f(c.plan_ns, 0),
            tcu_bench::fmt_f(c.memo.first_plan_ns / 1e6, 3),
            format!("{}/{}", c.memo.plan_cache_hits, c.memo.plan_cache_misses),
        ]);
    }
    table.print();

    // Run metadata, mirrored into the Perfetto trace header when
    // `TCU_TRACE_OUT` is set (see the flush below): executor worker
    // threads, the headline pack-cache capacity, and total plan-memo
    // hits across every case.
    let host_threads = tcu_core::HostExecutor::new().threads();
    let pack_cache_cap = tcu_core::pack_cache_capacity((d_block, d_block), SQRT_M, 1);
    let memo_hits: u64 = cases.iter().map(|c| c.memo.plan_cache_hits).sum();

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"sched\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"available_parallelism\": {threads},\n"));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"pack_cache_cap\": {pack_cache_cap},\n"));
    json.push_str(&format!("  \"memo_hits\": {memo_hits},\n"));
    json.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        json.push_str("    {");
        json.push_str(&format!(
            "\"name\": \"{}\", \"d\": {}, \"sqrt_m\": {}, \"threads\": {}, \"reps\": {}, \
             \"eager_ns_per_op\": {:.1}, \"sched_ns_per_op\": {:.1}, \
             \"plan_ns\": {:.1}, \"plan_ms\": {:.3}, \
             \"first_plan_ms\": {:.3}, \"amortized_plan_ms\": {:.3}, \
             \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
             \"speedup_wall\": {:.3}, \"eager_invocations\": {}, \
             \"sched_invocations\": {}, \"eager_sim_time\": {}, \
             \"sched_sim_time\": {}, \"speedup_sim\": {:.3}, \
             \"pack_lookups\": {}, \"pack_misses\": {}, \
             \"packed_bytes\": {}, \"pack_ratio\": {:.3}, \
             \"critical_path\": {}, \"sched_efficiency\": {:.4}, \
             \"makespan_over_cp\": {:.4}",
            c.name,
            c.d,
            c.sqrt_m,
            c.threads,
            c.reps,
            c.eager_ns,
            c.sched_ns,
            c.plan_ns,
            c.plan_ns / 1e6,
            c.memo.first_plan_ns / 1e6,
            c.memo.amortized_plan_ns / 1e6,
            c.memo.plan_cache_hits,
            c.memo.plan_cache_misses,
            c.eager_ns / c.sched_ns,
            c.eager_invocations,
            c.sched_invocations,
            c.eager_sim_time,
            c.sched_sim_time,
            c.eager_sim_time as f64 / c.sched_sim_time as f64,
            c.pack_lookups,
            c.pack_misses,
            c.packed_bytes,
            c.pack_ratio(),
            c.critical_path,
            c.sched_efficiency,
            c.makespan_over_cp,
        ));
        json.push('}');
        if i + 1 < cases.len() {
            json.push(',');
        }
        json.push('\n');
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_sched.json");
    println!("wrote {out_path}");

    // When `TCU_TRACE_OUT=<path>` is set, every machine this process
    // built recorded into the global sink; write the Perfetto trace
    // with the same run metadata the JSON header carries.
    let meta = tcu_obs::RunMeta {
        units: Some(cases.iter().map(|c| c.threads as u64).max().unwrap_or(1)),
        host_threads: Some(host_threads as u64),
        ci_cores: std::env::var("CI_CORES").ok().and_then(|v| v.parse().ok()),
        pack_cache_capacity: Some(pack_cache_cap as u64),
        memo_hits: Some(memo_hits),
        extra: vec![("bench".to_string(), "sched".to_string())],
    };
    match tcu_obs::flush_env_trace(&meta) {
        Ok(Some(path)) => println!("wrote {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("trace flush failed: {e}"),
    }
}
