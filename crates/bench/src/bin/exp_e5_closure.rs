//! Regenerates the e5_closure experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    tcu_bench::experiment_main(tcu_bench::experiments::e5_closure::run);
}
