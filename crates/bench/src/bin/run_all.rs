//! Runs every experiment in DESIGN.md's index, in order. Pass --quick
//! for reduced sweeps. `EXPERIMENTS.md` is a snapshot of this output.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::run_all(quick);
}
