//! Runs every experiment in DESIGN.md's index, in order. Pass --quick
//! for reduced sweeps. `EXPERIMENTS.md` is a snapshot of this output.
fn main() {
    tcu_bench::experiment_main(tcu_bench::experiments::run_all);
}
