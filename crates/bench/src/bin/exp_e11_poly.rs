//! Regenerates the e11_poly experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::e11_poly::run(quick);
}
