//! Host-kernel wall-clock benchmark: the seed `matmul_naive` execution
//! path versus the tiled (and optionally threaded) view kernels, at the
//! simulator's hot-path shapes. Emits machine-readable
//! `BENCH_matmul.json` next to the working directory (override with
//! `--out <path>`); `--quick` shrinks sizes/reps for the CI smoke run.
//!
//! Two families are measured:
//!
//! * `tensor_mul n=<n>` — one tensor instruction: `A (n × √m) · B
//!   (√m × √m)`, the host work behind every simulated invocation.
//!   The seed variant re-creates the operand marshalling the seed
//!   callers performed (allocating `block` copies) plus `matmul_naive`;
//!   the view variants run the packed tiled kernel over zero-copy
//!   subviews of the same operands.
//! * `blocked d=<d>` — the full Theorem 2 blocked multiplication of
//!   `d × d` operands (the E2 hot path), seed flow (block copies +
//!   `matmul_naive` + copy-back) versus the view flow.
//!
//! All variants are checked element-equal against `matmul_naive` before
//! timing, so the numbers can never come from a wrong kernel.

use tcu_linalg::kernels;
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::{Matrix, Scalar};

const SQRT_M: usize = 16;

/// Frozen replica of the seed `matmul_naive` inner loop (separate
/// multiply and add, zero-skip), so the baseline stays the *seed* kernel
/// even though the live `matmul_naive` oracle now shares `mul_add` with
/// the tiled kernels.
fn matmul_seed(a: &Matrix<f64>, b: &Matrix<f64>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions must agree");
    let (n, k, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, p);
    for i in 0..n {
        for l in 0..k {
            let ail = a[(i, l)];
            if ail == f64::ZERO {
                continue;
            }
            let brow = b.row(l);
            let crow: &mut [f64] = c.row_mut(i);
            for j in 0..p {
                crow[j] = crow[j].add(ail.mul(brow[j]));
            }
        }
    }
    c
}

struct Case {
    name: String,
    n: usize,
    sqrt_m: usize,
    reps: u32,
    seed_ns: f64,
    tiled_ns: f64,
    par_ns: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_matmul.json".to_string(), Clone::clone);
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let tall_sizes: &[usize] = if quick { &[64, 512] } else { &[64, 512, 2048] };
    // Quick mode keeps `d = 256` so the CI bench-diff step has a blocked
    // case in common with the committed full-run baseline.
    let blocked_sizes: &[usize] = if quick { &[256] } else { &[256, 512] };

    let mut cases = Vec::new();
    for &n in tall_sizes {
        cases.push(bench_tensor_mul(n, quick, threads));
    }
    for &d in blocked_sizes {
        cases.push(bench_blocked(d, quick, threads));
    }

    let mut table = tcu_bench::Table::new(
        "BENCH matmul — seed naive vs tiled view kernel (host wall-clock)",
        &[
            "case",
            "reps",
            "seed ns/op",
            "tiled ns/op",
            "par ns/op",
            "speedup",
            "par speedup",
        ],
    );
    for c in &cases {
        table.row(vec![
            c.name.clone(),
            c.reps.to_string(),
            tcu_bench::fmt_f(c.seed_ns, 0),
            tcu_bench::fmt_f(c.tiled_ns, 0),
            tcu_bench::fmt_f(c.par_ns, 0),
            tcu_bench::fmt_f(c.seed_ns / c.tiled_ns, 2),
            tcu_bench::fmt_f(c.seed_ns / c.par_ns, 2),
        ]);
    }
    table.print();

    let json = render_json(&cases, quick, threads);
    std::fs::write(&out_path, &json).expect("write BENCH_matmul.json");
    println!("wrote {out_path}");
}

fn workload(r: usize, c: usize, seed: u64) -> Matrix<f64> {
    Matrix::from_fn(r, c, |i, j| {
        let x = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(seed);
        (x % 4096) as f64 / 2048.0 - 1.0
    })
}

/// One simulated tensor instruction: `A (n × √m) · B (√m × √m)`. The
/// seed path includes the caller-side `block` copy that marshalled the
/// strip out of a wider matrix (as `dense::multiply` did).
fn bench_tensor_mul(n: usize, quick: bool, threads: usize) -> Case {
    let s = SQRT_M;
    // A lives inside a wider matrix, as in the blocked algorithms.
    let wide = workload(n, 4 * s, 1);
    let b = workload(s, s, 2);

    // The tiled kernels must equal the live oracle exactly; the frozen
    // seed replica differs from a fused-FMA build only in the last ulp.
    let want = matmul_naive(&wide.block(0, s, n, s), &b);
    assert_eq!(kernels::matmul(wide.subview(0, s, n, s), b.view()), want);
    assert_eq!(
        kernels::matmul_threads(wide.subview(0, s, n, s), b.view(), threads),
        want
    );
    assert!(tcu_linalg::ops::max_abs_diff(&matmul_seed(&wide.block(0, s, n, s), &b), &want) < 1e-9);

    let reps: u32 = if quick { 20 } else { 200 };
    let seed_ns = tcu_bench::time_ns(reps, || {
        let strip = wide.block(0, s, n, s);
        matmul_seed(&strip, &b)
    });
    let tiled_ns = tcu_bench::time_ns(reps, || kernels::matmul(wide.subview(0, s, n, s), b.view()));
    let par_ns = tcu_bench::time_ns(reps, || {
        kernels::matmul_threads(wide.subview(0, s, n, s), b.view(), threads)
    });
    Case {
        name: format!("tensor_mul n={n}"),
        n,
        sqrt_m: s,
        reps,
        seed_ns,
        tiled_ns,
        par_ns,
    }
}

/// The Theorem 2 blocked multiplication host flow for `d × d` operands.
/// The seed flow copies each strip per (column, step) pair and
/// accumulates naive products; the tiled flow packs each `A` strip once
/// and re-uses it across all block columns (`kernels::pack_a` +
/// `matmul_acc_packed`); the parallel flow runs the unpacked row-band
/// threaded kernel. All three produce the same matrix.
fn bench_blocked(d: usize, quick: bool, threads: usize) -> Case {
    let s = SQRT_M;
    let a = workload(d, d, 3);
    let b = workload(d, d, 4);
    let q = d / s;

    let seed_flow = || {
        let mut c = Matrix::<f64>::zeros(d, d);
        for j in 0..q {
            let mut acc: Option<Matrix<f64>> = None;
            for k in 0..q {
                let strip = a.block(0, k * s, d, s);
                let blk = b.block(k * s, j * s, s, s);
                let prod = matmul_seed(&strip, &blk);
                match &mut acc {
                    None => acc = Some(prod),
                    Some(sum) => sum.add_assign(&prod),
                }
            }
            c.set_block(0, j * s, &acc.expect("q >= 1"));
        }
        c
    };
    // The packed flow is the ROADMAP's "pack `A` strips once" lever:
    // strip `k` is packed into contiguous row panels once and re-used
    // for every block column `j` (the loop order is `k` outer, `j`
    // inner), so the full `A` is no longer re-streamed per block column
    // through page-strided views. Each output column strip still
    // accumulates its `k` contributions in ascending order, so results
    // are bit-identical to the unpacked `j`-outer flow.
    let packed_flow = || {
        let mut c = Matrix::<f64>::zeros(d, d);
        for k in 0..q {
            let pa = kernels::pack_a(a.subview(0, k * s, d, s));
            for j in 0..q {
                let mut out = c.subview_mut(0, j * s, d, s);
                kernels::matmul_acc_packed(&mut out, &pa, b.subview(k * s, j * s, s, s));
            }
        }
        c
    };
    let view_flow = |threads: usize| {
        let mut c = Matrix::<f64>::zeros(d, d);
        for j in 0..q {
            for k in 0..q {
                let mut out = c.subview_mut(0, j * s, d, s);
                kernels::matmul_acc_threads(
                    &mut out,
                    a.subview(0, k * s, d, s),
                    b.subview(k * s, j * s, s, s),
                    threads,
                );
            }
        }
        c
    };

    assert_eq!(view_flow(1), packed_flow());
    assert_eq!(view_flow(1), view_flow(threads));
    assert!(tcu_linalg::ops::max_abs_diff(&seed_flow(), &packed_flow()) < 1e-6 * d as f64);

    let reps: u32 = if quick { 3 } else { 10 };
    let seed_ns = tcu_bench::time_ns(reps, seed_flow);
    let tiled_ns = tcu_bench::time_ns(reps, packed_flow);
    let par_ns = tcu_bench::time_ns(reps, || view_flow(threads));
    Case {
        name: format!("blocked d={d}"),
        n: d,
        sqrt_m: s,
        reps,
        seed_ns,
        tiled_ns,
        par_ns,
    }
}

fn render_json(cases: &[Case], quick: bool, threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"matmul\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_threads\": {threads},\n"));
    // Core count of the measuring box: bench_diff refuses to compare
    // parallel-path speedups across runs with different counts.
    out.push_str(&format!("  \"available_parallelism\": {threads},\n"));
    out.push_str("  \"cases\": [\n");
    for (i, c) in cases.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"name\": \"{}\", \"n\": {}, \"sqrt_m\": {}, \"reps\": {}, \
             \"seed_ns_per_op\": {:.1}, \"tiled_ns_per_op\": {:.1}, \
             \"parallel_ns_per_op\": {:.1}, \"speedup_tiled\": {:.3}, \
             \"speedup_parallel\": {:.3}",
            c.name,
            c.n,
            c.sqrt_m,
            c.reps,
            c.seed_ns,
            c.tiled_ns,
            c.par_ns,
            c.seed_ns / c.tiled_ns,
            c.seed_ns / c.par_ns,
        ));
        out.push('}');
        if i + 1 < cases.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}
