//! Regenerates the e6_apsd experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    tcu_bench::experiment_main(tcu_bench::experiments::e6_apsd::run);
}
