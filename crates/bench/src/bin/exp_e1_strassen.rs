//! Regenerates the e1_strassen experiment table (see DESIGN.md's index).
//! Pass --quick for the reduced smoke-test sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    tcu_bench::experiments::e1_strassen::run(quick);
}
