//! Fast-path assertions for the experiment harness: tiny-`n` versions of
//! the checks E1 (Strassen), E2 (dense), and E7 (DFT) perform internally,
//! so `cargo test -q` exercises the harness's algorithm/closed-form
//! plumbing in milliseconds without running full sweeps (those stay in
//! `smoke.rs` via each experiment's quick mode).

use tcu_algos::{dense, fft, strassen, workloads};
use tcu_core::TcuMachine;
use tcu_linalg::ops::matmul_naive;
use tcu_linalg::{Matrix, Scalar};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// E1 at d = 32: both recursions match the oracle and their Theorem 1
/// closed forms, and Strassen issues fewer tensor calls than standard.
#[test]
fn e1_strassen_fastpath() {
    let d = 32usize;
    let (m, l) = (256usize, 1000u64);
    let mut rng = StdRng::seed_from_u64(0xE1);
    let a = workloads::random_matrix_i64(d, d, 50, &mut rng);
    let b = workloads::random_matrix_i64(d, d, 50, &mut rng);
    let want = matmul_naive(&a, &b);

    let mut std_mach = TcuMachine::model(m, l);
    assert_eq!(strassen::multiply_recursive(&mut std_mach, &a, &b), want);
    assert_eq!(std_mach.time(), strassen::recursive_time(d as u64, 16, l));

    let mut str_mach = TcuMachine::model(m, l);
    assert_eq!(strassen::multiply_strassen(&mut str_mach, &a, &b), want);
    assert_eq!(str_mach.time(), strassen::strassen_time(d as u64, 16, l));

    assert!(
        str_mach.stats().tensor_calls < std_mach.stats().tensor_calls,
        "Strassen (7 subproblems) must issue fewer tensor calls than standard (8)"
    );
}

/// E2 at d = 32: the blocked product matches the oracle, costs exactly the
/// Theorem 2 closed form, and the tall-operand streaming beats the naive
/// call order once latency is nonzero.
#[test]
fn e2_dense_fastpath() {
    let d = 32usize;
    let (m, l) = (256usize, 1000u64);
    let a = Matrix::from_fn(d, d, |i, j| ((3 * i + j) % 13) as i64 - 6);
    let b = Matrix::from_fn(d, d, |i, j| ((i + 5 * j) % 11) as i64 - 5);
    let want = matmul_naive(&a, &b);

    let mut mach = TcuMachine::model(m, l);
    assert_eq!(dense::multiply(&mut mach, &a, &b), want);
    assert_eq!(mach.time(), dense::multiply_time(d as u64, 16, l));

    let mut naive = TcuMachine::model(m, l);
    assert_eq!(dense::multiply_naive_order(&mut naive, &a, &b), want);
    assert_eq!(
        naive.time(),
        dense::multiply_naive_order_time(d as u64, 16, l)
    );
    assert!(
        mach.time() < naive.time(),
        "streaming tall operands must amortize latency over the naive order"
    );
}

/// E7 at n = 16: the TCU DFT matches the direct host transform, inverts
/// exactly, and the machine meters a nonzero simulated time for it.
#[test]
fn e7_dft_fastpath() {
    let n = 16usize;
    let mut rng = StdRng::seed_from_u64(0xE7);
    let x = workloads::random_vector_c64(n, &mut rng);

    let mut mach = TcuMachine::model(16, 10);
    let fwd = fft::dft(&mut mach, &x);
    assert!(mach.time() > 0, "the DFT must charge simulated time");

    let host = fft::dft_direct_host(&x);
    for (i, (got, want)) in fwd.iter().zip(&host).enumerate() {
        assert!(
            got.sub(*want).abs() < 1e-9,
            "bin {i} disagrees with host DFT"
        );
    }

    let back = fft::idft(&mut mach, &fwd);
    for (orig, got) in x.iter().zip(&back) {
        assert!(orig.sub(*got).abs() < 1e-9, "idft(dft(x)) must return x");
    }
}
