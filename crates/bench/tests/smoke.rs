//! Smoke tests: every experiment must run to completion in quick mode
//! (they contain their own internal assertions — oracle agreement,
//! exact closed forms, bound checks — so completing IS the test).
//! Heavier experiments are grouped to keep per-test wall time low.

use tcu_bench::experiments as exp;

#[test]
fn f1_and_val_run() {
    exp::f1_systolic::run(true);
    exp::val_cycles::run(true);
}

#[test]
fn dense_family_runs() {
    exp::e2_dense::run(true);
    exp::e2_rect::run(true);
    exp::e1_strassen::run(true);
}

#[test]
fn sparse_runs() {
    exp::e3_sparse::run(true);
}

#[test]
fn gauss_and_graphs_run() {
    exp::e4_gauss::run(true);
    exp::e5_closure::run(true);
    exp::e6_apsd::run(true);
}

#[test]
fn dft_and_stencil_run() {
    exp::e7_dft::run(true);
    exp::e8_stencil::run(true);
}

#[test]
fn intmul_and_poly_run() {
    exp::e9_intmul::run(true);
    exp::e10_karatsuba::run(true);
    exp::e11_poly::run(true);
}

#[test]
fn extmem_runs() {
    exp::e12_extmem::run(true);
}

#[test]
fn extensions_run() {
    exp::ep1_parallel::run(true);
    exp::ep2_precision::run(true);
}
