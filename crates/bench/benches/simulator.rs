//! Criterion wall-clock benchmarks of the simulator itself — one group
//! per experiment family, so regressions in the simulation substrate
//! (not the modelled costs) are visible. Simulated time is deterministic;
//! these measure how fast the reproduction *executes* those simulations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use tcu_algos::{apsd, closure, dense, fft, gauss, intmul, poly, stencil, strassen, workloads};
use tcu_core::TcuMachine;
use tcu_linalg::decomp::{augmented_from, diag_dominant};
use tcu_linalg::{Fp61, Matrix};
use tcu_systolic::SystolicArray;

fn bench_dense(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_dense_multiply");
    for d in [64usize, 128, 256] {
        let a = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 17) as i64);
        let b = Matrix::from_fn(d, d, |i, j| ((3 * i + j) % 13) as i64);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 1000);
                dense::multiply(&mut mach, &a, &b)
            });
        });
    }
    g.finish();
}

fn bench_strassen(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_strassen_multiply");
    for d in [64usize, 128, 256] {
        let a = Matrix::from_fn(d, d, |i, j| ((i * 5 + j) % 11) as i64);
        let b = Matrix::from_fn(d, d, |i, j| ((i + 7 * j) % 9) as i64);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 1000);
                strassen::multiply_strassen(&mut mach, &a, &b)
            });
        });
    }
    g.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let mut g = c.benchmark_group("f1_systolic_array");
    for s in [8usize, 16, 32] {
        let a = Matrix::from_fn(4 * s, s, |i, j| (i + j) as i64);
        let b = Matrix::from_fn(s, s, |i, j| (i * 2 + j) as i64);
        g.bench_with_input(BenchmarkId::from_parameter(s), &s, |bench, _| {
            bench.iter(|| {
                let mut arr = SystolicArray::new(s);
                arr.multiply(&a, &b)
            });
        });
    }
    g.finish();
}

fn bench_gauss(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_gauss_forward");
    for d in [64usize, 128, 256] {
        let a = diag_dominant(d - 1, 3);
        let rhs: Vec<f64> = (0..d - 1).map(|i| (i % 3) as f64).collect();
        let aug = augmented_from(&a, &rhs);
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(64, 100);
                let mut c = aug.clone();
                gauss::ge_forward(&mut mach, &mut c);
                c
            });
        });
    }
    g.finish();
}

fn bench_closure(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_transitive_closure");
    let mut rng = StdRng::seed_from_u64(1);
    for n in [64usize, 128] {
        let adj = workloads::random_digraph(n, 0.05, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 100);
                let mut d = adj.clone();
                closure::transitive_closure(&mut mach, &mut d);
                d
            });
        });
    }
    g.finish();
}

fn bench_apsd(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_seidel_apsd");
    let mut rng = StdRng::seed_from_u64(2);
    for n in [32usize, 64] {
        let adj = workloads::random_connected_graph(n, 0.1, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(64, 100);
                apsd::seidel_apsd(&mut mach, &adj)
            });
        });
    }
    g.finish();
}

fn bench_dft(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_dft");
    let mut rng = StdRng::seed_from_u64(3);
    for n in [1usize << 10, 1 << 12, 1 << 14] {
        let x = workloads::random_vector_c64(n, &mut rng);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 100);
                fft::dft(&mut mach, &x)
            });
        });
    }
    g.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_stencil");
    let mut rng = StdRng::seed_from_u64(4);
    let w = stencil::StencilWeights::heat(0.1, 0.1);
    for (d, k) in [(64usize, 16usize), (128, 32)] {
        let grid = workloads::random_grid(d, &mut rng);
        g.bench_with_input(
            BenchmarkId::new("d_k", format!("{d}_{k}")),
            &d,
            |bench, _| {
                bench.iter(|| {
                    let mut mach = TcuMachine::model(1024, 100);
                    stencil::run_tcu(&mut mach, &grid, &w, k)
                });
            },
        );
    }
    g.finish();
}

fn bench_intmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_e10_intmul");
    let mut rng = StdRng::seed_from_u64(5);
    for limbs in [256usize, 1024] {
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
        g.bench_with_input(BenchmarkId::new("schoolbook", limbs), &limbs, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 100);
                intmul::mul_tcu_schoolbook(&mut mach, &a, &b)
            });
        });
        g.bench_with_input(BenchmarkId::new("karatsuba", limbs), &limbs, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 100);
                intmul::mul_tcu_karatsuba(&mut mach, &a, &b)
            });
        });
    }
    g.finish();
}

fn bench_poly(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_poly_eval");
    let mut rng = StdRng::seed_from_u64(6);
    for n in [1usize << 12, 1 << 14] {
        let coeffs: Vec<Fp61> = (0..n).map(|i| Fp61::new(i as u64 * 2654435761)).collect();
        let points = workloads::random_matrix_fp(1, 128, &mut rng)
            .as_slice()
            .to_vec();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut mach = TcuMachine::model(256, 100);
                poly::batch_eval(&mut mach, &coeffs, &points)
            });
        });
    }
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group!(
    name = benches;
    config = configured();
    targets =
    bench_dense,
    bench_strassen,
    bench_systolic,
    bench_gauss,
    bench_closure,
    bench_apsd,
    bench_dft,
    bench_stencil,
    bench_intmul,
    bench_poly
);
criterion_main!(benches);
