//! # tcu-extmem — the external-memory model substrate (§5)
//!
//! Section 5 of the paper relates the TCU model to the external-memory
//! (I/O) model: an unbounded external memory, an internal memory of `M`
//! words, transfers in blocks of `B` words, cost = number of block
//! transfers. Two directions are exercised here:
//!
//! * **Simulation (Theorem 12).** Any weak-TCU execution can be replayed
//!   in an external memory of size `M = 3m + O(1)`: each `√m × √m` tensor
//!   invocation becomes `Θ(m)` I/Os (load two operands, write one) and
//!   each scalar operation `O(1)` I/Os. [`simulate`] replays the traces
//!   recorded by `tcu_core::TcuMachine` and verifies the cost
//!   correspondence empirically — so external-memory lower bounds (e.g.
//!   `Ω(n^{3/2}/√M)` for semiring matrix multiplication) transfer to
//!   weak-TCU running-time lower bounds.
//!
//! * **The EM algorithms themselves.** [`model`] is a word-addressed LRU
//!   cache simulator; [`mm`] implements the classic `Θ(n^{3/2}/(B√M))`
//!   blocked matrix multiplication and the naive triple loop, so the
//!   experiment can show the blocked EM I/O curve and the TCU time curve
//!   share their shape (the paper's observation that Theorem 2's
//!   `O(n^{3/2}/√m)` "recalls" the EM bound with `M = 3m`, `B = 1`).

pub mod mm;
pub mod model;
pub mod simulate;

pub use model::CacheSim;
pub use simulate::{replay_trace, replay_trace_detailed, ReplayBreakdown};
