//! Word-addressed external-memory simulator with an LRU-managed internal
//! memory of `M` words and block transfers of `B` words (Vitter's
//! parameters; the ideal-cache view of the same machine).
//!
//! The simulator tracks *which blocks are resident*, not their contents —
//! the I/O model's cost is purely the transfer count, and the numeric
//! work of the algorithms under study already runs in the host/TCU
//! simulators.

use std::collections::HashMap;

/// LRU cache over fixed-size blocks of a word-addressed address space.
#[derive(Clone, Debug)]
pub struct CacheSim {
    block_words: u64,
    capacity_blocks: usize,
    /// block id → last-access tick.
    resident: HashMap<u64, u64>,
    tick: u64,
    ios: u64,
}

impl CacheSim {
    /// Internal memory of `mem_words` words, transfers of `block_words`.
    ///
    /// # Panics
    /// Panics unless both are ≥ 1 and `mem_words ≥ block_words`.
    #[must_use]
    pub fn new(mem_words: usize, block_words: usize) -> Self {
        assert!(block_words >= 1, "block size must be positive");
        assert!(
            mem_words >= block_words,
            "internal memory must hold at least one block"
        );
        Self {
            block_words: block_words as u64,
            capacity_blocks: mem_words / block_words,
            resident: HashMap::new(),
            tick: 0,
            ios: 0,
        }
    }

    /// Touch one word; returns `true` on a hit. A miss evicts the
    /// least-recently-used block if the internal memory is full and
    /// transfers the target block (one I/O).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let block = addr / self.block_words;
        if let Some(t) = self.resident.get_mut(&block) {
            *t = self.tick;
            return true;
        }
        if self.resident.len() == self.capacity_blocks {
            // Evict the LRU block. Linear scan: capacities in the test
            // and experiment workloads are small (≤ a few thousand
            // blocks), and simplicity beats a custom intrusive list here.
            let (&lru, _) = self
                .resident
                .iter()
                .min_by_key(|&(_, &t)| t)
                .expect("non-empty at capacity");
            self.resident.remove(&lru);
        }
        self.resident.insert(block, self.tick);
        self.ios += 1;
        false
    }

    /// Touch a contiguous word range (e.g. a matrix row segment).
    pub fn access_range(&mut self, start: u64, len: u64) {
        let first = start / self.block_words;
        let last = (start + len.max(1) - 1) / self.block_words;
        for b in first..=last {
            self.access(b * self.block_words);
        }
    }

    /// Block transfers performed so far.
    #[must_use]
    pub fn io_count(&self) -> u64 {
        self.ios
    }

    /// Blocks currently resident.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// Capacity in blocks (`⌊M/B⌋`).
    #[must_use]
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(64, 8);
        assert!(!c.access(3)); // cold miss
        assert!(c.access(3));
        assert!(c.access(7)); // same block
        assert!(!c.access(8)); // next block
        assert_eq!(c.io_count(), 2);
    }

    #[test]
    fn sequential_scan_costs_n_over_b() {
        let (n, b) = (1024u64, 16usize);
        let mut c = CacheSim::new(64, b);
        for a in 0..n {
            c.access(a);
        }
        assert_eq!(c.io_count(), n / b as u64);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Capacity 2 blocks of 1 word: access 0, 1, 0, 2 → evicts 1.
        let mut c = CacheSim::new(2, 1);
        c.access(0);
        c.access(1);
        c.access(0);
        c.access(2); // evicts block 1
        assert!(c.access(0), "block 0 must still be resident");
        assert!(!c.access(1), "block 1 must have been evicted");
        assert_eq!(c.resident_blocks(), 2);
    }

    #[test]
    fn thrashing_working_set_misses_every_time() {
        // Working set of capacity+1 blocks cycled in order defeats LRU.
        let mut c = CacheSim::new(4, 1);
        let mut misses = 0;
        for round in 0..10 {
            for a in 0..5u64 {
                if !c.access(a) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        assert_eq!(misses, 50, "every access in the cyclic pattern must miss");
    }

    #[test]
    fn access_range_spans_blocks() {
        let mut c = CacheSim::new(1024, 8);
        c.access_range(6, 10); // words 6..16 → blocks 0, 1
        assert_eq!(c.io_count(), 2);
        c.access_range(6, 10); // resident now
        assert_eq!(c.io_count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn rejects_tiny_memory() {
        let _ = CacheSim::new(4, 8);
    }
}
