//! Theorem 12: replaying a (weak-)TCU execution trace in the external
//! memory model.
//!
//! The simulation argument: with internal memory `M = 3m + O(1)` and
//! `B = 1`, a `√m × √m` tensor invocation is served by loading the two
//! input matrices (`2m` I/Os), multiplying inside the internal memory for
//! free, and writing the `m`-word result back (`m` I/Os); every scalar
//! CPU operation touches `O(1)` words (`≤ 3` I/Os here: two reads and a
//! write). Hence a weak-TCU algorithm running in time `T` yields an EM
//! algorithm with `O(T)` I/Os — and conversely an EM lower bound `F_P`
//! forces `T = Ω(F_P)` on the weak TCU.

use tcu_core::{TraceEvent, TraceLog};

/// Per-event-type I/O totals from a replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayBreakdown {
    /// I/Os from tensor invocations (`3m` each at `B = 1`; tall
    /// invocations count `2·n√m + m`).
    pub tensor_ios: u64,
    /// I/Os from scalar operations (3 each: two operand reads, one write).
    pub scalar_ios: u64,
    /// Tensor invocations replayed.
    pub tensor_calls: u64,
}

impl ReplayBreakdown {
    /// Total I/Os.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.tensor_ios + self.scalar_ios
    }
}

/// Replay a trace and return the total I/O count (Theorem 12's charge).
#[must_use]
pub fn replay_trace(trace: &TraceLog, sqrt_m: usize) -> u64 {
    replay_trace_detailed(trace, sqrt_m).total()
}

/// Replay a trace with a per-event-type breakdown.
#[must_use]
pub fn replay_trace_detailed(trace: &TraceLog, sqrt_m: usize) -> ReplayBreakdown {
    let s = sqrt_m as u64;
    let mut out = ReplayBreakdown::default();
    for ev in trace.events() {
        match *ev {
            // The trace carries full per-invocation `TensorOp`s; the EM
            // charge depends only on the charged row count (`op.rows` —
            // tall splits and padding were applied at record time).
            TraceEvent::Tensor { op, .. } => {
                // Load A (n√m) and B (m), write C (n√m), one word per I/O.
                out.tensor_ios += 2 * (op.rows as u64) * s + s * s;
                out.tensor_calls += 1;
            }
            TraceEvent::Scalar { ops } => {
                out.scalar_ios += 3 * ops;
            }
            // Recovery annotations (fault/retry/quarantine) move no
            // data in the EM model — the recovered ops' tensor events
            // already carry their full I/O charge.
            TraceEvent::Fault { .. } | TraceEvent::Retry { .. } | TraceEvent::Quarantine { .. } => {
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::Matrix;

    fn traced_dense_multiply(d: usize, m: usize, l: u64, weak: bool) -> (u64, TraceLog, usize) {
        let a = Matrix::from_fn(d, d, |i, j| ((i * 7 + j * 3) % 11) as i64);
        let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as i64);
        if weak {
            let mut mach = TcuMachine::weak(m, l);
            mach.enable_trace();
            let _ = tcu_algos::dense::multiply(&mut mach, &a, &b);
            (mach.time(), mach.take_trace(), mach.sqrt_m())
        } else {
            let mut mach = TcuMachine::model(m, l);
            mach.enable_trace();
            let _ = tcu_algos::dense::multiply(&mut mach, &a, &b);
            (mach.time(), mach.take_trace(), mach.sqrt_m())
        }
    }

    #[test]
    fn square_call_costs_3m_ios() {
        let mut log = TraceLog::new();
        // √m = 4 square call, model charge m = 16.
        log.push_tensor(tcu_core::TensorOp::mul(4, 4), 16);
        let b = replay_trace_detailed(&log, 4);
        assert_eq!(b.tensor_ios, 3 * 16);
        assert_eq!(b.total(), 48);
    }

    #[test]
    fn scalar_ops_cost_constant_ios() {
        let mut log = TraceLog::new();
        log.push_scalar(100);
        assert_eq!(replay_trace(&log, 4), 300);
    }

    #[test]
    fn weak_trace_replay_is_big_theta_of_time() {
        // Theorem 12: I/Os = O(T). The constant here is small: every time
        // unit maps to at most 3 I/Os.
        for (d, m) in [(16usize, 16usize), (32, 16), (32, 64)] {
            let (time, trace, s) = traced_dense_multiply(d, m, 0, true);
            let ios = replay_trace(&trace, s);
            assert!(ios <= 3 * time, "d={d} m={m}: ios {ios} vs time {time}");
            assert!(
                ios >= time,
                "replay can't be cheaper than the streaming time itself"
            );
        }
    }

    #[test]
    fn em_lower_bound_transfers_to_weak_tcu_time() {
        // The contrapositive use of Theorem 12: weak-TCU time for dense MM
        // must be Ω(EM lower bound with M = 3m).
        for (d, m) in [(32usize, 16usize), (64, 16), (64, 64)] {
            let (time, _, _) = traced_dense_multiply(d, m, 0, true);
            let lb = crate::mm::mm_io_lower_bound(d as u64, 3 * m as u64, 1);
            assert!(
                time as f64 >= lb as f64 / 3.0,
                "d={d} m={m}: time {time} below EM lower bound {lb}"
            );
        }
    }

    #[test]
    fn strong_machine_tall_calls_replay_with_fewer_b_loads() {
        // The strong model's tall calls amortize the B-matrix I/Os: the
        // replayed I/O count of the strong trace is below the weak one.
        let (_, weak_trace, s) = traced_dense_multiply(32, 16, 0, true);
        let (_, strong_trace, _) = traced_dense_multiply(32, 16, 0, false);
        let weak_ios = replay_trace(&weak_trace, s);
        let strong_ios = replay_trace(&strong_trace, s);
        assert!(strong_ios < weak_ios);
        // The difference is exactly the extra B loads: weak does q³ loads
        // of m words, strong q² (q = d/√m = 8).
        assert_eq!(weak_ios - strong_ios, (8 * 8 * 8 - 8 * 8) * 16);
    }

    #[test]
    fn empty_trace_replays_to_zero() {
        assert_eq!(replay_trace(&TraceLog::new(), 4), 0);
    }
}
