//! External-memory matrix multiplication: the naive triple loop replayed
//! through the LRU simulator, and the classic blocked algorithm with its
//! `Θ(d³/(B√M))` transfer count — the EM bound the paper's Theorem 2
//! mirrors with `M = 3m`, `B = 1`.

use crate::model::CacheSim;

/// Layout used by the address traces: `A` at offset 0, `B` at `d²`, `C`
/// at `2d²`, all row-major `d × d`.
fn addr_a(d: u64, i: u64, k: u64) -> u64 {
    i * d + k
}
fn addr_b(d: u64, k: u64, j: u64) -> u64 {
    d * d + k * d + j
}
fn addr_c(d: u64, i: u64, j: u64) -> u64 {
    2 * d * d + i * d + j
}

/// Replay the naive `i,k,j` triple loop through the LRU cache and return
/// the I/O count. `Θ(d³)` accesses — keep `d` modest.
#[must_use]
pub fn naive_mm_io(d: usize, mem_words: usize, block_words: usize) -> u64 {
    let d = d as u64;
    let mut cache = CacheSim::new(mem_words, block_words);
    for i in 0..d {
        for k in 0..d {
            cache.access(addr_a(d, i, k));
            for j in 0..d {
                cache.access(addr_b(d, k, j));
                cache.access(addr_c(d, i, j));
            }
        }
    }
    cache.io_count()
}

/// Replay the `t × t`-blocked algorithm (`t = ⌊√(M/3)⌋`) through the LRU
/// cache. The access order keeps one `A`-tile, one `B`-tile and one
/// `C`-tile hot at a time, so LRU realizes the textbook bound without
/// explicit control of the memory.
#[must_use]
pub fn blocked_mm_io(d: usize, mem_words: usize, block_words: usize) -> u64 {
    let tile = ((mem_words / 3) as f64).sqrt().floor() as usize;
    let tile = tile.clamp(1, d);
    let d64 = d as u64;
    let t = tile as u64;
    let mut cache = CacheSim::new(mem_words, block_words);
    let tiles = d.div_ceil(tile) as u64;
    for bi in 0..tiles {
        for bj in 0..tiles {
            for bk in 0..tiles {
                // Touch the three tiles in full (row-segment at a time).
                for r in 0..t.min(d64 - bi * t) {
                    cache.access_range(addr_a(d64, bi * t + r, bk * t), t.min(d64 - bk * t));
                }
                for r in 0..t.min(d64 - bk * t) {
                    cache.access_range(addr_b(d64, bk * t + r, bj * t), t.min(d64 - bj * t));
                }
                for r in 0..t.min(d64 - bi * t) {
                    cache.access_range(addr_c(d64, bi * t + r, bj * t), t.min(d64 - bj * t));
                }
            }
        }
    }
    cache.io_count()
}

/// The closed-form transfer count of the explicit (non-LRU) blocked EM
/// algorithm: `(d/t)³` tile triples, each moving `3t²/B` blocks, with
/// `t = √(M/3)` — i.e. `Θ(d³/(B·√M))`.
#[must_use]
pub fn blocked_mm_io_bound(d: u64, mem_words: u64, block_words: u64) -> u64 {
    let t = ((mem_words / 3) as f64).sqrt().floor().max(1.0) as u64;
    let t = t.min(d);
    let tiles = d.div_ceil(t);
    let tile_blocks = (t * t).div_ceil(block_words);
    tiles * tiles * tiles * 3 * tile_blocks
}

/// The semiring matrix-multiplication I/O lower bound (Hong–Kung form):
/// `d³/(8·√M·B)` — the reference curve experiment E12 plots under both
/// the EM measurements and the TCU times.
#[must_use]
pub fn mm_io_lower_bound(d: u64, mem_words: u64, block_words: u64) -> u64 {
    let denom = 8.0 * (mem_words as f64).sqrt() * block_words as f64;
    ((d as f64).powi(3) / denom) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocked_beats_naive() {
        let (d, mem, blk) = (48usize, 192usize, 4usize);
        let naive = naive_mm_io(d, mem, blk);
        let blocked = blocked_mm_io(d, mem, blk);
        assert!(
            blocked * 2 < naive,
            "blocked ({blocked}) must be far below naive ({naive})"
        );
    }

    #[test]
    fn blocked_sim_is_within_constant_of_closed_form() {
        for d in [16usize, 32, 48] {
            let (mem, blk) = (108usize, 1usize);
            let sim = blocked_mm_io(d, mem, blk);
            let bound = blocked_mm_io_bound(d as u64, mem as u64, blk as u64);
            let ratio = sim as f64 / bound as f64;
            assert!(
                (0.3..=1.5).contains(&ratio),
                "d={d}: sim {sim} vs bound {bound} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn everything_fits_costs_compulsory_misses_only() {
        // M big enough for all three matrices: only 3d²/B compulsory I/Os.
        let d = 8usize;
        let mem = 3 * d * d + 16;
        let io = naive_mm_io(d, mem, 1);
        assert_eq!(io, (3 * d * d) as u64);
    }

    #[test]
    fn lower_bound_below_blocked_count() {
        for d in [32u64, 64, 128] {
            let (mem, blk) = (300u64, 1u64);
            assert!(mm_io_lower_bound(d, mem, blk) <= blocked_mm_io_bound(d, mem, blk));
        }
    }

    #[test]
    fn io_grows_cubically_when_memory_is_scarce() {
        let (mem, blk) = (48usize, 1usize);
        let a = blocked_mm_io(16, mem, blk);
        let b = blocked_mm_io(32, mem, blk);
        let ratio = b as f64 / a as f64;
        assert!(
            (6.0..=10.0).contains(&ratio),
            "doubling d should ≈8× the I/Os (got {ratio:.2})"
        );
    }
}
