//! The weight-stationary systolic array, simulated one global step at a
//! time (paper §2.2 and Figure 1).
//!
//! Data choreography for `C = A·B` with `A : n × √m`, `B : √m × √m`:
//!
//! * PE `(i, j)` holds `b_{i,j}` after the load phase.
//! * Column `i` of `A` enters PE row `i` from the left, skewed so that
//!   `a_{r,i}` enters PE `(i, 0)` at streaming step `k = r + i` (the
//!   paper's input `a_{k−i,i}` at step `k` for `j = 0`).
//! * Partial sums flow downward: PE `(i, j)` computes
//!   `c ← c_in + a_in · b_{i,j}` and forwards `a` right and `c` down.
//! * The bottom PE of column `j` emits `c_{r,j}` at step `r + j + √m − 1`.

use tcu_linalg::{Matrix, MatrixView, Scalar};

/// Timing facts gathered while streaming one left operand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayReport {
    /// Streaming steps executed (excludes the weight-load phase).
    pub stream_steps: u64,
    /// For each output position `(r, j)` (row-major, `n × √m`): the
    /// streaming step at which the value left the bottom edge.
    pub output_step: Vec<u64>,
    /// Multiply-accumulate operations performed across all PEs (the
    /// model's point that the unit always does `Θ(m^{3/2})` work per
    /// square call even though the *time* is `Θ(m)`).
    pub mac_ops: u64,
}

/// A `√m × √m` grid of processing elements with stationary weights.
#[derive(Clone, Debug)]
pub struct SystolicArray<T: Scalar> {
    sqrt_m: usize,
    /// Stationary weights, `weights[i*√m + j]` in PE `(i, j)`; `None`
    /// until a load phase has run.
    weights: Option<Vec<T>>,
    /// Global cycle counter across load and stream phases.
    cycles: u64,
}

impl<T: Scalar> SystolicArray<T> {
    /// An array of `√m × √m` PEs with no weights loaded.
    ///
    /// # Panics
    /// Panics if `sqrt_m == 0`.
    #[must_use]
    pub fn new(sqrt_m: usize) -> Self {
        assert!(sqrt_m >= 1, "array must have at least one PE");
        Self {
            sqrt_m,
            weights: None,
            cycles: 0,
        }
    }

    /// `√m`.
    #[inline]
    #[must_use]
    pub fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    /// Total cycles consumed so far (load + stream phases).
    #[inline]
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// `true` iff a weight matrix is resident.
    #[inline]
    #[must_use]
    pub fn weights_loaded(&self) -> bool {
        self.weights.is_some()
    }

    /// Load phase: push `B` into the grid, one row per step (`√m` cycles).
    ///
    /// # Panics
    /// Panics unless `b` is `√m × √m`.
    pub fn load_weights(&mut self, b: &Matrix<T>) {
        self.load_weights_view(b.view());
    }

    /// [`Self::load_weights`] from a borrowed view — weight blocks carved
    /// out of a larger matrix load without an intermediate copy.
    ///
    /// # Panics
    /// Panics unless `b` is `√m × √m`.
    pub fn load_weights_view(&mut self, b: MatrixView<'_, T>) {
        let s = self.sqrt_m;
        assert_eq!((b.rows(), b.cols()), (s, s), "weights must be √m × √m");
        let mut w = Vec::with_capacity(s * s);
        for i in 0..s {
            w.extend_from_slice(b.row(i));
        }
        self.weights = Some(w);
        self.cycles += crate::load_cycles(s);
    }

    /// Stream an `n × √m` left operand through the resident weights,
    /// simulating every global step, and return `C = A·B` along with the
    /// per-output timing report.
    ///
    /// # Panics
    /// Panics if no weights are loaded or `a.cols() != √m`.
    pub fn stream(&mut self, a: &Matrix<T>) -> (Matrix<T>, ArrayReport) {
        self.stream_view(a.view())
    }

    /// [`Self::stream`] of a borrowed left-operand view (zero-copy tall
    /// streaming).
    ///
    /// # Panics
    /// Panics if no weights are loaded or `a.cols() != √m`.
    pub fn stream_view(&mut self, a: MatrixView<'_, T>) -> (Matrix<T>, ArrayReport) {
        let s = self.sqrt_m;
        let n = a.rows();
        assert_eq!(a.cols(), s, "left operand must have √m columns");
        let weights = self
            .weights
            .as_ref()
            .expect("load_weights before streaming");
        assert!(n >= 1, "left operand must have at least one row");

        // Per-PE registers as produced at the end of the previous step:
        // `a_reg[i][j]` is the A value PE (i,j) forwards right, and
        // `c_reg[i][j]` the partial sum it forwards down.
        let mut a_reg = vec![T::ZERO; s * s];
        let mut c_reg = vec![T::ZERO; s * s];
        let mut a_next = vec![T::ZERO; s * s];
        let mut c_next = vec![T::ZERO; s * s];

        let mut out = Matrix::<T>::zeros(n, s);
        let mut output_step = vec![0u64; n * s];
        let mut emitted = 0usize;
        let mut mac_ops = 0u64;
        let total = n * s;
        let steps = crate::stream_cycles(n, s);

        for k in 0..steps {
            for i in 0..s {
                for j in 0..s {
                    let a_in = if j == 0 {
                        // Skewed injection: a_{k−i, i} enters row i (§2.2).
                        let r = k as i64 - i as i64;
                        if r >= 0 && (r as usize) < n {
                            a.at(r as usize, i)
                        } else {
                            T::ZERO
                        }
                    } else {
                        a_reg[i * s + (j - 1)]
                    };
                    let c_in = if i == 0 {
                        T::ZERO
                    } else {
                        c_reg[(i - 1) * s + j]
                    };
                    // Same fused multiply-add (and the same ascending-k
                    // accumulation order) as the host kernels, so the
                    // two executor backends agree element-for-element —
                    // on floats too, not just exact rings.
                    let c_out = c_in.mul_add(a_in, weights[i * s + j]);
                    mac_ops += 1;
                    a_next[i * s + j] = a_in;
                    c_next[i * s + j] = c_out;
                    if i == s - 1 {
                        // Bottom edge: this is c_{r,j} for r = k − (s−1) − j.
                        let r = k as i64 - (s as i64 - 1) - j as i64;
                        if r >= 0 && (r as usize) < n {
                            out[(r as usize, j)] = c_out;
                            output_step[r as usize * s + j] = k;
                            emitted += 1;
                        }
                    }
                }
            }
            std::mem::swap(&mut a_reg, &mut a_next);
            std::mem::swap(&mut c_reg, &mut c_next);
        }

        assert_eq!(
            emitted, total,
            "every output must drain within the counted steps"
        );
        self.cycles += steps;
        (
            out,
            ArrayReport {
                stream_steps: steps,
                output_step,
                mac_ops,
            },
        )
    }

    /// Convenience: one full weight-stationary multiply (load + stream).
    pub fn multiply(&mut self, a: &Matrix<T>, b: &Matrix<T>) -> (Matrix<T>, ArrayReport) {
        self.multiply_view(a.view(), b.view())
    }

    /// [`Self::multiply`] over borrowed views.
    pub fn multiply_view(
        &mut self,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
    ) -> (Matrix<T>, ArrayReport) {
        self.load_weights_view(b);
        self.stream_view(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_linalg::ops::matmul_naive;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 37 + j as i64 * 11 + seed).wrapping_mul(2654435761) >> 9) % 50 - 25
        })
    }

    #[test]
    fn square_multiply_is_exact() {
        for s in [1usize, 2, 3, 4, 8] {
            let a = pseudo(s, s, 1);
            let b = pseudo(s, s, 2);
            let mut arr = SystolicArray::new(s);
            let (c, _) = arr.multiply(&a, &b);
            assert_eq!(c, matmul_naive(&a, &b), "s = {s}");
        }
    }

    #[test]
    fn tall_multiply_is_exact() {
        let s = 4;
        for n in [4usize, 5, 7, 16, 33] {
            let a = pseudo(n, s, 3);
            let b = pseudo(s, s, 4);
            let mut arr = SystolicArray::new(s);
            let (c, _) = arr.multiply(&a, &b);
            assert_eq!(c, matmul_naive(&a, &b), "n = {n}");
        }
    }

    #[test]
    fn strided_views_stream_like_owned_operands() {
        // Operands carved as views out of larger matrices must produce
        // the identical product, report, and cycle count.
        let s = 4;
        let wide = pseudo(12, 10, 11);
        let weights = pseudo(8, 8, 12);
        let a = wide.block(2, 3, 9, s);
        let b = weights.block(1, 2, s, s);

        let mut owned = SystolicArray::new(s);
        let (c_owned, rep_owned) = owned.multiply(&a, &b);
        let mut viewed = SystolicArray::new(s);
        let (c_viewed, rep_viewed) =
            viewed.multiply_view(wide.subview(2, 3, 9, s), weights.subview(1, 2, s, s));
        assert_eq!(c_owned, c_viewed);
        assert_eq!(rep_owned, rep_viewed);
        assert_eq!(owned.cycles(), viewed.cycles());
    }

    #[test]
    fn output_timing_matches_paper() {
        // c_{r,j} exits at streaming step r + j + √m − 1 (paper: √m + i + j
        // with 1-indexed conventions).
        let s = 5;
        let n = 9;
        let a = pseudo(n, s, 5);
        let b = pseudo(s, s, 6);
        let mut arr = SystolicArray::new(s);
        let (_, rep) = arr.multiply(&a, &b);
        for r in 0..n {
            for j in 0..s {
                assert_eq!(
                    rep.output_step[r * s + j],
                    (r + j + s - 1) as u64,
                    "output ({r},{j})"
                );
            }
        }
    }

    #[test]
    fn cycle_counts_match_closed_forms() {
        let s = 8;
        // Square multiply: s load + 3s − 2 streaming.
        let a = pseudo(s, s, 7);
        let b = pseudo(s, s, 8);
        let mut arr = SystolicArray::new(s);
        let (_, rep) = arr.multiply(&a, &b);
        assert_eq!(rep.stream_steps, (3 * s - 2) as u64);
        assert_eq!(arr.cycles(), (4 * s - 2) as u64);
        assert_eq!(arr.cycles(), crate::multiply_cycles(s, s));

        // Tall multiply with resident weights: n + 2s − 2 streaming steps.
        let n = 40;
        let tall = pseudo(n, s, 9);
        let mut arr2 = SystolicArray::new(s);
        let (_, rep2) = arr2.multiply(&tall, &b);
        assert_eq!(rep2.stream_steps, (n + 2 * s - 2) as u64);
        assert_eq!(arr2.cycles(), crate::multiply_cycles(n, s));
    }

    #[test]
    fn streaming_reuses_resident_weights() {
        // Two streams over one load: the second pays no load cycles —
        // the amortization behind the TCU model's tall-operand feature.
        let s = 4;
        let b = pseudo(s, s, 10);
        let a1 = pseudo(6, s, 11);
        let a2 = pseudo(9, s, 12);
        let mut arr = SystolicArray::new(s);
        arr.load_weights(&b);
        let after_load = arr.cycles();
        assert_eq!(after_load, crate::load_cycles(s));
        let (c1, _) = arr.stream(&a1);
        let (c2, _) = arr.stream(&a2);
        assert_eq!(c1, matmul_naive(&a1, &b));
        assert_eq!(c2, matmul_naive(&a2, &b));
        assert_eq!(
            arr.cycles(),
            after_load + crate::stream_cycles(6, s) + crate::stream_cycles(9, s)
        );
    }

    #[test]
    fn mac_throughput_is_theta_m_per_step() {
        // The unit performs Θ(m^{3/2}) MACs per square multiply while the
        // step count is Θ(√m): all m PEs fire every step.
        let s = 6;
        let a = pseudo(s, s, 13);
        let b = pseudo(s, s, 14);
        let mut arr = SystolicArray::new(s);
        let (_, rep) = arr.multiply(&a, &b);
        assert_eq!(rep.mac_ops, rep.stream_steps * (s * s) as u64);
    }

    #[test]
    fn works_over_f64() {
        let s = 4;
        let a = Matrix::from_fn(10, s, |i, j| (i as f64 + 1.0) / (j as f64 + 2.0));
        let b = Matrix::from_fn(s, s, |i, j| (i as f64) * 0.25 - (j as f64) * 0.5);
        let mut arr = SystolicArray::new(s);
        let (c, _) = arr.multiply(&a, &b);
        let diff = tcu_linalg::ops::max_abs_diff(&c, &matmul_naive(&a, &b));
        assert!(diff < 1e-12, "diff = {diff}");
    }

    #[test]
    #[should_panic(expected = "load_weights before streaming")]
    fn stream_without_weights_panics() {
        let mut arr = SystolicArray::<i64>::new(2);
        let a = Matrix::zeros(2, 2);
        let _ = arr.stream(&a);
    }
}
