//! # tcu-systolic — cycle-level simulation of the §2.2 systolic array
//!
//! The paper grounds the (m, ℓ)-TCU model in the weight-stationary
//! systolic algorithm used by Google's TPU (§2.2, Figure 1): a `√m × √m`
//! grid of processing elements holds the right operand `B` in place while
//! the rows of the left operand `A` are pumped through in skewed
//! diagonals; partial sums trickle down the columns and the products exit
//! at the bottom edge.
//!
//! This crate simulates that array one global step at a time, so the
//! model's abstractions can be *checked* rather than assumed:
//!
//! * the product is exact ([`SystolicArray::multiply`] equals the naive
//!   product for every operand shape);
//! * output `c_{r,j}` leaves the array at streaming step `r + j + √m − 1`
//!   — the paper's "end of step `√m + i + j`" up to 0- vs 1-indexing;
//! * a square multiply takes `3√m − 2` streaming steps after a `√m`-step
//!   weight load (the paper's "3√m steps"), and a tall multiply takes
//!   `n + 2√m − 2`: streaming `n ≫ √m` rows amortizes both the load and
//!   the pipeline drain, which is exactly the asymmetric feature the TCU
//!   model postulates;
//! * [`SystolicTensorUnit`] plugs these counted costs into `tcu-core` as a
//!   [`tcu_core::TensorUnit`] policy, giving the "VAL" experiment its
//!   cycle-accurate-vs-model comparison.
//!
//! The NVIDIA-style variant, in which `B` is *percolated* through the
//! array like `A` instead of staying resident (§2.2), corresponds to the
//! weak model: every call reloads `B`, so tall operands bring no latency
//! amortization. `tcu_core::WeakTensorUnit` with `ℓ ≈ m` models it; see
//! [`percolating_multiply_cycles`] for the counted equivalent.

pub mod array;
pub mod exec;
pub mod unit;

pub use array::{ArrayReport, SystolicArray};
pub use exec::SystolicExecutor;
pub use unit::SystolicTensorUnit;

/// Cycles to load the stationary weights: one row per step (§2.2: "in the
/// first √m steps, matrix B is pushed within the m PEs").
#[inline]
#[must_use]
pub fn load_cycles(sqrt_m: usize) -> u64 {
    sqrt_m as u64
}

/// Streaming steps to push an `n × √m` left operand through and drain all
/// outputs: the last output `c_{n−1, √m−1}` exits at step
/// `(n−1) + (√m−1) + (√m−1)`, so `n + 2√m − 2` steps run in total.
#[inline]
#[must_use]
pub fn stream_cycles(n_rows: usize, sqrt_m: usize) -> u64 {
    (n_rows + 2 * sqrt_m - 2) as u64
}

/// Total steps for one weight-stationary multiply (load + stream). For a
/// square operand this is `4√m − 2`; the paper quotes the streaming part
/// as "3√m steps".
#[inline]
#[must_use]
pub fn multiply_cycles(n_rows: usize, sqrt_m: usize) -> u64 {
    load_cycles(sqrt_m) + stream_cycles(n_rows, sqrt_m)
}

/// CPU-clock time of one multiply as the TCU model measures it: the cost
/// is "dominated by reading/writing the input and output matrices" (§3,
/// property 1). The host moves `m` words of `B`, `n√m` words of `A` in and
/// `n√m` words of `C` out, and waits out the `2√m − 2`-step pipeline
/// drain: `2n√m + m + 2√m − 2` — which is `Θ(n√m + m)`, i.e. `Θ(m)` for a
/// square call, the model's charge with an effective latency
/// `ℓ = m + 2√m − 2` (see [`SystolicTensorUnit`]).
#[inline]
#[must_use]
pub fn cpu_time(n_rows: usize, sqrt_m: usize) -> u64 {
    let (n, s) = (n_rows as u64, sqrt_m as u64);
    2 * n * s + s * s + 2 * s - 2
}

/// CPU-clock time of multiplying an `n × √m` left operand under the
/// NVIDIA-style *percolating* schedule, where `B` cannot stay resident:
/// the operand is split into `⌈n/√m⌉` square tiles and `B` is re-pushed
/// for each, so the `m`-word reload is paid per tile.
#[inline]
#[must_use]
pub fn percolating_multiply_cycles(n_rows: usize, sqrt_m: usize) -> u64 {
    let tiles = n_rows.div_ceil(sqrt_m) as u64;
    tiles * cpu_time(sqrt_m, sqrt_m)
}
