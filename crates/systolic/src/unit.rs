//! A [`TensorUnit`] costing policy backed by the counted behaviour of the
//! systolic array, instead of the closed-form model charge.
//!
//! This is the bridge for the "VAL" experiment: run the *same* TCU
//! algorithm once on [`tcu_core::ModelTensorUnit`] and once on
//! [`SystolicTensorUnit`], and compare simulated times. The model is
//! validated if the two agree up to the small constant the paper's `O(·)`
//! absorbs (the ratio tends to 2: the host writes `n√m` output words in
//! addition to reading `n√m` input words, while the model folds both into
//! one `n√m` term).

use tcu_core::TensorUnit;

/// Charges each invocation the CPU-clock time of driving the
/// weight-stationary array: `2n√m + m + 2√m − 2` (see
/// [`crate::cpu_time`]); the latency component is the non-streaming part
/// `m + 2√m − 2` (weight load + pipeline drain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SystolicTensorUnit {
    sqrt_m: usize,
}

impl SystolicTensorUnit {
    /// Build from the hardware capacity `m` (a perfect square).
    ///
    /// # Panics
    /// Panics unless `m ≥ 1` is a perfect square.
    #[must_use]
    pub fn new(m: usize) -> Self {
        assert!(m >= 1, "m must be positive");
        Self {
            sqrt_m: tcu_core::exact_sqrt(m),
        }
    }

    /// Build directly from `√m`.
    #[must_use]
    pub fn from_sqrt_m(sqrt_m: usize) -> Self {
        assert!(sqrt_m >= 1, "sqrt_m must be positive");
        Self { sqrt_m }
    }

    /// The effective latency this hardware realizes: `m + 2√m − 2` (the
    /// weight-load and drain cycles a call pays regardless of `n`). This
    /// is the natural `ℓ` to hand a [`tcu_core::ModelTensorUnit`] when
    /// comparing against this policy.
    #[must_use]
    pub fn effective_latency(&self) -> u64 {
        let s = self.sqrt_m as u64;
        s * s + 2 * s - 2
    }
}

impl TensorUnit for SystolicTensorUnit {
    fn sqrt_m(&self) -> usize {
        self.sqrt_m
    }

    fn latency(&self) -> u64 {
        self.effective_latency()
    }

    fn invocation_cost(&self, n_rows: usize) -> u64 {
        crate::cpu_time(n_rows, self.sqrt_m)
    }

    fn invocation_latency(&self, _n_rows: usize) -> u64 {
        self.effective_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::TcuMachine;
    use tcu_linalg::{Matrix, Scalar};

    #[test]
    fn cost_decomposes_into_stream_plus_latency() {
        let u = SystolicTensorUnit::new(64);
        assert_eq!(u.sqrt_m(), 8);
        let n = 100;
        assert_eq!(
            u.invocation_cost(n),
            2 * (n as u64) * 8 + u.effective_latency()
        );
    }

    #[test]
    fn machine_accepts_systolic_policy() {
        let mut mach = TcuMachine::new(SystolicTensorUnit::new(16));
        let a = Matrix::from_fn(8, 4, |i, j| (i + j) as i64);
        let b = Matrix::<i64>::identity(4);
        let c = mach.tensor_mul(&a, &b);
        assert_eq!(c, a);
        assert_eq!(mach.time(), crate::cpu_time(8, 4));
        assert_eq!(
            mach.stats().tensor_latency_time,
            SystolicTensorUnit::new(16).effective_latency()
        );
    }

    #[test]
    fn counted_cycles_match_formula_via_simulation() {
        // The closed forms used by the costing policy must agree with the
        // step-by-step simulation in `array`.
        for s in [2usize, 4, 7] {
            for n in [s, 2 * s, 3 * s + 1] {
                let a = Matrix::from_fn(n, s, |i, j| (i * s + j) as i64);
                let b = Matrix::from_fn(s, s, |i, j| (i + 2 * j) as i64);
                let mut arr = crate::SystolicArray::new(s);
                let (_, rep) = arr.multiply(&a, &b);
                assert_eq!(rep.stream_steps, crate::stream_cycles(n, s));
                assert_eq!(arr.cycles(), crate::multiply_cycles(n, s));
            }
        }
    }

    #[test]
    fn percolating_schedule_loses_amortization() {
        // NVIDIA-style percolation reloads B per square tile: for n = 8·√m
        // rows it pays 8 full loads, whereas weight-stationary pays one.
        let s = 16;
        let n = 8 * s;
        let stationary = crate::cpu_time(n, s);
        let percolating = crate::percolating_multiply_cycles(n, s);
        assert!(percolating > stationary);
        // Exactly 8 tiles, each a full square-call cost.
        assert_eq!(percolating, 8 * crate::cpu_time(s, s));
    }

    #[test]
    fn scalar_zero_sanity() {
        // Guard the Scalar import used by from_fn in this test module.
        assert_eq!(<i64 as Scalar>::ZERO, 0);
    }
}
