//! [`SystolicExecutor`]: tensor-op numerics computed by the cycle-level
//! weight-stationary array instead of the tiled host kernels.
//!
//! Plugged into `tcu_core::TcuMachine::with_executor`, every issued
//! `TensorOp` is executed by simulating the §2.2 array one global step
//! at a time — load `B` into the grid, pump `A` through in skewed
//! diagonals, collect the outputs at the bottom edge. Accounting is
//! untouched (the machine's [`tcu_core::TensorUnit`] policy decides the
//! simulated charge); what this backend changes is *how* the numbers
//! are produced, and what [`tcu_core::Executor::execute`] returns is
//! the counted array cycles — the backend-native cost the VAL
//! experiment compares against the model charge.
//!
//! The array performs the same fused multiply-add in the same
//! ascending-`k` order as the host kernels, so the two backends agree
//! element-for-element on every scalar type, floats included.

use crate::array::SystolicArray;
use tcu_core::{Executor, TensorOp};
use tcu_linalg::{Matrix, MatrixView, MatrixViewMut, Scalar};

/// Numeric backend driving a [`SystolicArray`] per invocation.
///
/// Stateless between ops (each op loads its own weights), so one
/// executor serves any mix of shapes up to the machine's `√m`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystolicExecutor;

impl SystolicExecutor {
    /// A fresh executor.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Executor for SystolicExecutor {
    fn name(&self) -> &'static str {
        "systolic"
    }

    fn execute<T: Scalar>(
        &mut self,
        op: &TensorOp,
        a: MatrixView<'_, T>,
        b: MatrixView<'_, T>,
        out: &mut MatrixViewMut<'_, T>,
    ) -> u64 {
        if op.rows == 0 {
            return 0;
        }
        // The grid is square; undersized (padded-policy) operands run on
        // an array sized to the larger operand side, with zero padding —
        // zeros stream through PEs without changing any output.
        let side = op.inner.max(op.width).max(1);
        let mut arr = SystolicArray::<T>::new(side);
        let prod = if op.inner == side && op.width == side {
            let (prod, _) = arr.multiply_view(a, b);
            prod
        } else {
            let a_pad = Matrix::from_fn(op.rows, side, |i, j| {
                if j < op.inner {
                    a.at(i, j)
                } else {
                    T::ZERO
                }
            });
            let b_pad = Matrix::from_fn(side, side, |i, j| {
                if i < op.inner && j < op.width {
                    b.at(i, j)
                } else {
                    T::ZERO
                }
            });
            let (prod, _) = arr.multiply_view(a_pad.view(), b_pad.view());
            prod
        };
        for i in 0..op.rows {
            let crow = out.row_mut(i);
            let prow = prod.row(i);
            if op.accumulate {
                for j in 0..op.width {
                    crow[j] = crow[j].add(prow[j]);
                }
            } else {
                crow[..op.width].copy_from_slice(&prow[..op.width]);
            }
        }
        arr.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcu_core::{HostExecutor, TcuMachine, WeakTensorUnit};
    use tcu_linalg::ops::matmul_naive;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 31 + j as i64 * 17 + seed).wrapping_mul(48271) >> 7) % 23 - 11
        })
    }

    #[test]
    fn machine_over_systolic_executor_matches_host_numerics_and_stats() {
        let a = pseudo(12, 4, 1);
        let b = pseudo(4, 4, 2);
        let mut host = TcuMachine::with_executor(WeakTensorUnit::new(16, 9), HostExecutor::new());
        let mut sys =
            TcuMachine::with_executor(WeakTensorUnit::new(16, 9), SystolicExecutor::new());
        host.enable_trace();
        sys.enable_trace();
        let ch = host.tensor_mul(&a, &b);
        let cs = sys.tensor_mul(&a, &b);
        assert_eq!(ch, cs);
        assert_eq!(ch, matmul_naive(&a, &b));
        assert_eq!(host.stats(), sys.stats());
        assert_eq!(host.take_trace(), sys.take_trace());
    }

    #[test]
    fn padded_ops_run_on_a_padded_grid() {
        let a = pseudo(2, 3, 3);
        let b = pseudo(3, 2, 4);
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), SystolicExecutor);
        let c = sys.tensor_mul_padded(&a, &b);
        assert_eq!(c, matmul_naive(&a, &b));
        assert_eq!((c.rows(), c.cols()), (2, 2));
    }

    #[test]
    fn accumulating_ops_add_into_the_destination() {
        let a = pseudo(8, 4, 5);
        let b = pseudo(4, 4, 6);
        let mut base = pseudo(8, 4, 7);
        let mut want = base.clone();
        want.add_assign(&matmul_naive(&a, &b));
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), SystolicExecutor);
        sys.tensor_mul_acc_view(a.view(), b.view(), &mut base.view_mut());
        assert_eq!(base, want);
    }

    #[test]
    fn float_results_agree_with_host_kernels_exactly() {
        let a = Matrix::from_fn(9, 4, |i, j| (i as f64 - 3.5) * 0.25 + j as f64 * 0.125);
        let b = Matrix::from_fn(4, 4, |i, j| (j as f64 - 2.0) * 0.5 - i as f64 * 0.0625);
        let mut host = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), HostExecutor::new());
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), SystolicExecutor);
        // IEEE bit equality, not tolerance: both backends fuse the same
        // multiply-add in the same order.
        assert_eq!(host.tensor_mul(&a, &b), sys.tensor_mul(&a, &b));
    }

    #[test]
    fn executor_reports_counted_cycles() {
        let mut exec = SystolicExecutor::new();
        let a = pseudo(8, 4, 8);
        let b = pseudo(4, 4, 9);
        let mut out = Matrix::<i64>::zeros(8, 4);
        let cycles = exec.execute(
            &tcu_core::TensorOp::mul(8, 4),
            a.view(),
            b.view(),
            &mut out.view_mut(),
        );
        assert_eq!(cycles, crate::multiply_cycles(8, 4));
        assert_eq!(out, matmul_naive(&a, &b));
    }
}
