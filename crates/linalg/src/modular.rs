//! Arithmetic in the prime field `F_p` with `p = 2^61 − 1` (a Mersenne
//! prime), used where the reproduction wants *exact* ring arithmetic on the
//! simulated tensor unit: batch polynomial evaluation (Theorem 11) and
//! exact property tests of the dense multiplication algorithms. The paper's
//! model is agnostic to the element type (each word holds κ bits); `F_p`
//! keeps every intermediate value in one 64-bit word, mirroring the paper's
//! "κ = Ω(log n) bits per word" assumption without floating-point error.

use crate::scalar::{Field, Scalar};

/// The Mersenne prime `2^61 − 1`.
pub const P61: u64 = (1u64 << 61) - 1;

/// An element of `F_{2^61−1}`, stored in canonical form `0 ≤ x < p`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub struct Fp61(u64);

impl Fp61 {
    /// Embed an arbitrary `u64` by reduction mod `p`.
    #[inline]
    #[must_use]
    pub fn new(x: u64) -> Self {
        Self(x % P61)
    }

    /// The canonical representative in `[0, p)`.
    #[inline]
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Fast reduction of a 128-bit product modulo the Mersenne prime:
    /// split into 61-bit halves and add (since `2^61 ≡ 1 (mod p)`).
    #[inline]
    fn reduce128(x: u128) -> u64 {
        let lo = (x as u64) & P61;
        let hi = (x >> 61) as u64;
        let mut s = lo + hi;
        if s >= P61 {
            s -= P61;
        }
        // hi can itself exceed p for x near u128::MAX, but our inputs are
        // products of two values < 2^61, so hi < 2^61 and one fold plus one
        // conditional subtraction suffices.
        if s >= P61 {
            s -= P61;
        }
        s
    }

    /// Modular exponentiation by squaring.
    #[must_use]
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self(1);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^{p−2}`).
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn inv(self) -> Self {
        assert!(self.0 != 0, "inverse of zero in F_p");
        self.pow(P61 - 2)
    }
}

impl From<u64> for Fp61 {
    #[inline]
    fn from(x: u64) -> Self {
        Self::new(x)
    }
}

impl Scalar for Fp61 {
    const ZERO: Self = Self(0);
    const ONE: Self = Self(1);

    #[inline]
    fn add(self, rhs: Self) -> Self {
        let mut s = self.0 + rhs.0;
        if s >= P61 {
            s -= P61;
        }
        Self(s)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        let s = if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P61 - rhs.0
        };
        Self(s)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self(Self::reduce128(u128::from(self.0) * u128::from(rhs.0)))
    }
}

impl Field for Fp61 {
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.mul(rhs.inv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_on_construction() {
        assert_eq!(Fp61::new(P61).value(), 0);
        assert_eq!(Fp61::new(P61 + 5).value(), 5);
        assert_eq!(Fp61::new(u64::MAX).value(), u64::MAX % P61);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Fp61::new(P61 - 3);
        let b = Fp61::new(7);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.add(b).value(), 4); // wraps past p
        assert_eq!(Fp61::ZERO.sub(Fp61::ONE).value(), P61 - 1);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let pairs = [
            (0u64, 0u64),
            (1, P61 - 1),
            (P61 - 1, P61 - 1),
            (123_456_789_012_345, 987_654_321_098_765),
            (1u64 << 60, (1u64 << 60) + 12345),
        ];
        for (x, y) in pairs {
            let want = ((u128::from(x % P61) * u128::from(y % P61)) % u128::from(P61)) as u64;
            assert_eq!(Fp61::new(x).mul(Fp61::new(y)).value(), want, "x={x} y={y}");
        }
    }

    #[test]
    fn pow_and_fermat() {
        let x = Fp61::new(1_234_567);
        assert_eq!(x.pow(0), Fp61::ONE);
        assert_eq!(x.pow(1), x);
        assert_eq!(x.pow(5), x.mul(x).mul(x).mul(x).mul(x));
        // Fermat: x^{p-1} = 1
        assert_eq!(x.pow(P61 - 1), Fp61::ONE);
    }

    #[test]
    fn inverse_and_division() {
        let x = Fp61::new(987_654_321);
        assert_eq!(x.mul(x.inv()), Fp61::ONE);
        let y = Fp61::new(424_242);
        assert_eq!(Field::div(x.mul(y), y), x);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = Fp61::ZERO.inv();
    }
}
