//! Borrowed, strided submatrix views — the zero-copy operand type of the
//! host execution layer.
//!
//! The paper's algorithms address square blocks `X_{i,j}`, vertical
//! strips of width `√m`, and whole matrices; the seed marshalled each of
//! those through an allocating copy (`block` / `col_strip`) before every
//! tensor invocation. A [`MatrixView`] names the same region without
//! copying: `(rows, cols, row_stride)` over a borrowed slice whose first
//! element is the region's `(0, 0)` entry. Views are `Copy` and cheap to
//! sub-slice, so blocked algorithms carve operands structurally and only
//! the kernels in [`crate::kernels`] touch the elements.
//!
//! [`MatrixViewMut`] is the writable counterpart used for in-place block
//! updates (Schur complements, closure accumulation) and for handing
//! disjoint row bands to the parallel kernel.
//!
//! Simulated cost is unaffected by any of this: in the (m, ℓ)-TCU model
//! operand marshalling is part of the tensor instruction's `O(n√m + ℓ)`
//! charge, so whether the host copies or borrows is invisible to
//! `Stats`/trace accounting.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// An immutable `rows × cols` view into row-major storage with an
/// arbitrary row stride (`stride ≥ cols`). Element `(i, j)` lives at
/// `data[i * row_stride + j]`; `data[0]` is element `(0, 0)`.
#[derive(Clone, Copy)]
pub struct MatrixView<'a, T> {
    rows: usize,
    cols: usize,
    row_stride: usize,
    data: &'a [T],
}

impl<'a, T: Scalar> MatrixView<'a, T> {
    /// Wrap `data` as a `rows × cols` view with the given row stride.
    ///
    /// # Panics
    /// Panics if the stride is below the width or the slice is too short
    /// to hold the last row.
    #[must_use]
    pub fn new(rows: usize, cols: usize, row_stride: usize, data: &'a [T]) -> Self {
        assert!(row_stride >= cols, "row stride below view width");
        if rows > 0 {
            assert!(
                data.len() >= (rows - 1) * row_stride + cols,
                "backing slice too short for view"
            );
        }
        Self {
            rows,
            cols,
            row_stride,
            data,
        }
    }

    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between the starts of consecutive rows.
    #[inline]
    #[must_use]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// Element `(i, j)` by value.
    #[inline]
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Row `i` as a contiguous slice of length `cols`.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &'a [T] {
        let base = i * self.row_stride;
        &self.data[base..base + self.cols]
    }

    /// The `h × w` sub-view with top-left corner at `(r0, c0)` — no copy,
    /// same backing slice.
    ///
    /// # Panics
    /// Panics if the region exceeds the view bounds.
    #[must_use]
    pub fn subview(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'a, T> {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "subview out of bounds"
        );
        let start = r0 * self.row_stride + c0;
        // Trim the tail so the new view's length invariant is tight even
        // for the last row of the parent.
        let end = if h == 0 {
            start
        } else {
            start + (h - 1) * self.row_stride + w
        };
        MatrixView {
            rows: h,
            cols: w,
            row_stride: self.row_stride,
            data: &self.data[start..end],
        }
    }

    /// `true` iff rows are adjacent in memory (`row_stride == cols`), so
    /// the whole view is one contiguous slice.
    #[inline]
    #[must_use]
    pub fn is_contiguous(&self) -> bool {
        self.row_stride == self.cols || self.rows <= 1
    }

    /// Transpose of the viewed region, gathered in 32×32 cache tiles:
    /// the strided reads and the contiguous writes of each tile stay
    /// cache-resident, instead of the column-major `from_fn` gather
    /// (which walks the full source once per output row).
    #[must_use]
    pub fn transpose(&self) -> Matrix<T> {
        const TILE: usize = 32;
        let (r, c) = (self.rows, self.cols);
        let mut out = Matrix::<T>::zeros(c, r);
        let odata = out.as_mut_slice();
        for i0 in (0..r).step_by(TILE) {
            let ih = TILE.min(r - i0);
            for j0 in (0..c).step_by(TILE) {
                let jw = TILE.min(c - j0);
                for dj in 0..jw {
                    // One contiguous run of output row j0+dj, read from
                    // the (resident) source tile's column j0+dj.
                    let orow = &mut odata[(j0 + dj) * r + i0..(j0 + dj) * r + i0 + ih];
                    for (di, o) in orow.iter_mut().enumerate() {
                        *o = self.at(i0 + di, j0 + dj);
                    }
                }
            }
        }
        out
    }

    /// Materialize the viewed region as an owned [`Matrix`].
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<T> {
        if self.is_contiguous() && self.data.len() == self.rows * self.cols {
            return Matrix::from_vec(self.rows, self.cols, self.data.to_vec());
        }
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl<T: Scalar> PartialEq for MatrixView<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && (0..self.rows).all(|i| self.row(i) == other.row(i))
    }
}

impl<T: Scalar> std::fmt::Debug for MatrixView<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatrixView {}x{} (stride {})",
            self.rows, self.cols, self.row_stride
        )
    }
}

/// A mutable `rows × cols` strided view; the writable counterpart of
/// [`MatrixView`] used for in-place block updates and disjoint row-band
/// writes.
pub struct MatrixViewMut<'a, T> {
    rows: usize,
    cols: usize,
    row_stride: usize,
    data: &'a mut [T],
}

impl<'a, T: Scalar> MatrixViewMut<'a, T> {
    /// Wrap `data` as a mutable `rows × cols` view with the given stride.
    ///
    /// # Panics
    /// Panics if the stride is below the width or the slice is too short.
    #[must_use]
    pub fn new(rows: usize, cols: usize, row_stride: usize, data: &'a mut [T]) -> Self {
        assert!(row_stride >= cols, "row stride below view width");
        if rows > 0 {
            assert!(
                data.len() >= (rows - 1) * row_stride + cols,
                "backing slice too short for view"
            );
        }
        Self {
            rows,
            cols,
            row_stride,
            data,
        }
    }

    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element `(i, j)` by value.
    #[inline]
    #[must_use]
    pub fn at(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j]
    }

    /// Overwrite element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.row_stride + j] = v;
    }

    /// Row `i` as a mutable contiguous slice of length `cols`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        let base = i * self.row_stride;
        &mut self.data[base..base + self.cols]
    }

    /// Reborrow as an immutable view (for reading while held mutably).
    #[must_use]
    pub fn as_view(&self) -> MatrixView<'_, T> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            data: self.data,
        }
    }

    /// Reborrow mutably with a shorter lifetime (e.g. to feed
    /// [`Self::split_at_row`], which consumes its receiver).
    #[must_use]
    pub fn reborrow(&mut self) -> MatrixViewMut<'_, T> {
        MatrixViewMut {
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            data: self.data,
        }
    }

    /// Overwrite the whole region from `src` (shapes must match).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn copy_from(&mut self, src: MatrixView<'_, T>) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "copy_from: shape mismatch"
        );
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }

    /// Combine every element with the matching element of `src`:
    /// `self[i,j] = f(self[i,j], src[i,j])`. The workhorse of in-place
    /// block accumulation (`f = add`) and closure clamping.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_apply(&mut self, src: MatrixView<'_, T>, f: impl Fn(T, T) -> T) {
        assert_eq!(
            (self.rows, self.cols),
            (src.rows(), src.cols()),
            "zip_apply: shape mismatch"
        );
        for i in 0..self.rows {
            let srow = src.row(i);
            for (d, &s) in self.row_mut(i).iter_mut().zip(srow) {
                *d = f(*d, s);
            }
        }
    }

    /// In-place element-wise accumulation `self += src`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, src: MatrixView<'_, T>) {
        self.zip_apply(src, T::add);
    }

    /// Reborrow a mutable `h × w` sub-block anchored at `(r0, c0)` — the
    /// region write path of the deferred scheduler, which binds one
    /// mutable view per logical output buffer and carves each op's
    /// destination out of it.
    ///
    /// # Panics
    /// Panics if the block exceeds the view bounds.
    #[must_use]
    pub fn subview_mut(
        &mut self,
        r0: usize,
        c0: usize,
        h: usize,
        w: usize,
    ) -> MatrixViewMut<'_, T> {
        assert!(r0 + h <= self.rows && c0 + w <= self.cols, "subview bounds");
        let base = (r0 * self.row_stride + c0).min(self.data.len());
        let end = if h == 0 || w == 0 {
            base
        } else {
            base + (h - 1) * self.row_stride + w
        };
        MatrixViewMut {
            rows: h,
            cols: w,
            row_stride: self.row_stride,
            data: &mut self.data[base..end],
        }
    }

    /// Split into two disjoint mutable views at row `r`: `[0, r)` and
    /// `[r, rows)`. Repeated splits carve a matrix into the disjoint row
    /// bands handed to parallel workers.
    ///
    /// # Panics
    /// Panics if `r > rows`.
    #[must_use]
    pub fn split_at_row(self, r: usize) -> (MatrixViewMut<'a, T>, MatrixViewMut<'a, T>) {
        assert!(r <= self.rows, "split row out of bounds");
        let boundary = (r * self.row_stride).min(self.data.len());
        let (top, bottom) = self.data.split_at_mut(boundary);
        (
            MatrixViewMut {
                rows: r,
                cols: self.cols,
                row_stride: self.row_stride,
                data: top,
            },
            MatrixViewMut {
                rows: self.rows - r,
                cols: self.cols,
                row_stride: self.row_stride,
                data: bottom,
            },
        )
    }
}

impl<T: Scalar> std::fmt::Debug for MatrixViewMut<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MatrixViewMut {}x{} (stride {})",
            self.rows, self.cols, self.row_stride
        )
    }
}

impl<T: Scalar> Matrix<T> {
    /// View of the whole matrix.
    #[must_use]
    pub fn view(&self) -> MatrixView<'_, T> {
        MatrixView::new(self.rows(), self.cols(), self.cols(), self.as_slice())
    }

    /// Zero-copy view of the `h × w` block at `(r0, c0)` — the borrowed
    /// replacement for [`Matrix::block`].
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn subview(&self, r0: usize, c0: usize, h: usize, w: usize) -> MatrixView<'_, T> {
        self.view().subview(r0, c0, h, w)
    }

    /// Zero-copy vertical strip: all rows, columns `[c0, c0 + w)` — the
    /// borrowed replacement for [`Matrix::col_strip`].
    ///
    /// # Panics
    /// Panics if the strip exceeds the matrix bounds.
    #[must_use]
    pub fn col_strip_view(&self, c0: usize, w: usize) -> MatrixView<'_, T> {
        self.subview(0, c0, self.rows(), w)
    }

    /// Mutable view of the whole matrix.
    #[must_use]
    pub fn view_mut(&mut self) -> MatrixViewMut<'_, T> {
        let (rows, cols) = (self.rows(), self.cols());
        MatrixViewMut::new(rows, cols, cols, self.as_mut_slice())
    }

    /// Mutable zero-copy view of the `h × w` block at `(r0, c0)` — the
    /// borrowed replacement for the `block`/mutate/`set_block` round trip.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn subview_mut(
        &mut self,
        r0: usize,
        c0: usize,
        h: usize,
        w: usize,
    ) -> MatrixViewMut<'_, T> {
        let (rows, cols) = (self.rows(), self.cols());
        assert!(r0 + h <= rows && c0 + w <= cols, "subview out of bounds");
        let start = r0 * cols + c0;
        let end = if h == 0 {
            start
        } else {
            start + (h - 1) * cols + w
        };
        MatrixViewMut::new(h, w, cols, &mut self.as_mut_slice()[start..end])
    }

    /// Overwrite the block at `(r0, c0)` from a view (strided source).
    ///
    /// # Panics
    /// Panics if `src` exceeds the matrix bounds at that offset.
    pub fn set_block_view(&mut self, r0: usize, c0: usize, src: MatrixView<'_, T>) {
        self.subview_mut(r0, c0, src.rows(), src.cols())
            .copy_from(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(r: usize, c: usize) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| (i * c + j) as i64)
    }

    #[test]
    fn whole_matrix_view_roundtrip() {
        let m = iota(3, 5);
        let v = m.view();
        assert_eq!((v.rows(), v.cols(), v.row_stride()), (3, 5, 5));
        assert!(v.is_contiguous());
        assert_eq!(v.to_matrix(), m);
        assert_eq!(v.at(2, 4), m[(2, 4)]);
        assert_eq!(v.row(1), m.row(1));
    }

    #[test]
    fn nested_subview_mut_writes_the_right_region() {
        let mut m = iota(6, 7);
        let want = {
            let mut w = m.clone();
            for i in 2..4 {
                for j in 3..5 {
                    w[(i, j)] = -1;
                }
            }
            w
        };
        let mut outer = m.subview_mut(1, 1, 4, 5);
        let mut inner = outer.subview_mut(1, 2, 2, 2);
        assert_eq!((inner.rows(), inner.cols()), (2, 2));
        for i in 0..2 {
            inner.row_mut(i).fill(-1);
        }
        assert_eq!(m, want);
        // Degenerate regions are fine anywhere in bounds.
        let _ = m.subview_mut(0, 0, 6, 7).subview_mut(6, 7, 0, 0);
    }

    #[test]
    fn subview_matches_block_copy() {
        let m = iota(6, 7);
        for (r0, c0, h, w) in [(0, 0, 6, 7), (2, 3, 2, 2), (1, 0, 4, 7), (5, 6, 1, 1)] {
            let v = m.subview(r0, c0, h, w);
            assert_eq!(v.to_matrix(), m.block(r0, c0, h, w), "{r0},{c0},{h},{w}");
        }
        // Nested subview composes offsets.
        let v = m.subview(1, 1, 4, 5).subview(1, 2, 2, 2);
        assert_eq!(v.to_matrix(), m.block(2, 3, 2, 2));
    }

    #[test]
    fn col_strip_view_matches_col_strip() {
        let m = iota(4, 6);
        let v = m.col_strip_view(2, 2);
        assert!(!v.is_contiguous());
        assert_eq!(v.to_matrix(), m.col_strip(2, 2));
    }

    #[test]
    fn empty_views_are_fine() {
        let m = iota(4, 4);
        let v = m.subview(2, 2, 0, 2);
        assert_eq!(v.rows(), 0);
        assert_eq!(v.to_matrix(), Matrix::<i64>::zeros(0, 2));
    }

    #[test]
    #[should_panic(expected = "subview out of bounds")]
    fn subview_out_of_bounds_panics() {
        let m = iota(4, 4);
        let _ = m.subview(3, 3, 2, 2);
    }

    #[test]
    fn mutable_block_update_in_place() {
        let mut m = iota(6, 6);
        let want = {
            let mut w = m.clone();
            let add = iota(2, 2);
            let mut blk = w.block(2, 3, 2, 2);
            blk.add_assign(&add);
            w.set_block(2, 3, &blk);
            w
        };
        let add = iota(2, 2);
        m.subview_mut(2, 3, 2, 2).add_assign(add.view());
        assert_eq!(m, want);
    }

    #[test]
    fn zip_apply_clamps() {
        let mut m = iota(2, 2);
        let p = Matrix::from_rows(&[vec![5i64, 0], vec![0, 5]]);
        m.subview_mut(0, 0, 2, 2)
            .zip_apply(p.view(), |x, y| i64::from(x + y > 0));
        assert_eq!(m, Matrix::from_rows(&[vec![1i64, 1], vec![1, 1]]));
    }

    #[test]
    fn copy_from_and_set_block_view() {
        let src = iota(5, 5);
        let mut dst = Matrix::<i64>::zeros(5, 5);
        dst.set_block_view(1, 1, src.subview(2, 2, 3, 3));
        assert_eq!(dst[(1, 1)], src[(2, 2)]);
        assert_eq!(dst[(3, 3)], src[(4, 4)]);
        assert_eq!(dst[(0, 0)], 0);
    }

    #[test]
    fn split_at_row_gives_disjoint_bands() {
        let mut m = iota(6, 3);
        let v = m.view_mut();
        let (mut top, mut bottom) = v.split_at_row(2);
        assert_eq!((top.rows(), bottom.rows()), (2, 4));
        top.set(0, 0, -1);
        bottom.set(3, 2, -2);
        assert_eq!(m[(0, 0)], -1);
        assert_eq!(m[(5, 2)], -2);
    }

    #[test]
    fn view_equality_ignores_stride() {
        let m = iota(4, 8);
        let n = m.block(1, 2, 2, 3);
        assert_eq!(m.subview(1, 2, 2, 3), n.view());
    }

    #[test]
    fn strided_view_transpose_matches_block_transpose() {
        let m = iota(40, 50);
        let v = m.subview(3, 7, 33, 35);
        let want = Matrix::from_fn(35, 33, |i, j| m[(3 + j, 7 + i)]);
        assert_eq!(v.transpose(), want);
    }
}
