//! Tiled host kernels for the simulator's hot path.
//!
//! Every simulated tensor instruction ends in a host matrix product;
//! [`crate::ops::matmul_naive`] defines the semantics (and stays the test
//! oracle), while the kernels here compute the *same sum in the same
//! per-element order* but organized for the cache and the register file:
//!
//! * [`pack_b`] copies the right operand once per invocation into
//!   column panels of width `NR`, so the micro-kernel reads `B` as
//!   contiguous, reusable rows regardless of the source view's stride;
//! * the `MR × NR` register-blocked micro-kernel keeps a full tile of
//!   `C` in accumulators across the entire inner (`k`) loop, eliminating
//!   the per-`k` round trips through `C` that dominate the naive triple
//!   loop;
//! * [`matmul_threads`] adds an opt-in parallel path that splits the
//!   tall left operand into **deterministic row bands** — band
//!   boundaries depend only on `(rows, threads)`, each band is written
//!   by exactly one worker via disjoint `split_at_mut` chunks, and every
//!   element is accumulated in the same `k` order as the serial kernel —
//!   so results are bit-identical for every thread count;
//! * [`matmul_into`] is the runtime-dispatch entry the executor layer
//!   keys off a `TensorOp`'s accumulate flag;
//! * [`pack_a`] / [`matmul_acc_packed`] pack a tall strip once into
//!   interleaved row panels so blocked flows that re-stream the same
//!   strip per block column read a compact sequential buffer instead of
//!   page-strided rows.
//!
//! Accumulation order matters: for each output element the `k` loop runs
//! in ascending order from a zero accumulator, exactly like
//! `matmul_naive`, so integer and `F_p` results are equal and float
//! results agree under IEEE `==` (the only divergence is the sign of a
//! zero, which `==` ignores). Determinism of the *simulated* machine is
//! untouched — these kernels never see `Stats` or traces.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::view::{MatrixView, MatrixViewMut};

/// Minimum rows per parallel band: below this, a band's kernel work is
/// cheaper than spawning the thread that would run it.
const MIN_BAND_ROWS: usize = 128;

/// Micro-kernel height: rows of `C` kept in accumulators per tile.
const MR: usize = 4;
/// Micro-kernel width: one packed `B` panel. `4 × 16` keeps the whole
/// accumulator tile in vector registers (8 zmm of `f64` with AVX-512,
/// 16 ymm with AVX2) and covers the hot `√m = 16` shape with a single
/// panel, so the left operand is traversed once per invocation.
const NR: usize = 16;

/// `C = A·B` through the tiled kernel, single-threaded.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul<T: Scalar>(a: MatrixView<'_, T>, b: MatrixView<'_, T>) -> Matrix<T> {
    matmul_threads(a, b, 1)
}

/// `C = A·B` through the tiled kernel, splitting the left operand's rows
/// into `threads` deterministic bands executed under
/// [`std::thread::scope`]. `threads ≤ 1` (or too few rows) runs the
/// serial kernel on the calling thread; results are identical either
/// way, element for element.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul_threads<T: Scalar>(
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    threads: usize,
) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions must agree");
    let mut c = Matrix::<T>::zeros(a.rows(), b.cols());
    run::<T, false>(&mut c.view_mut(), a, b, threads);
    c
}

/// Fused accumulate `C += A·B` into a (possibly strided) destination
/// view — the `D = A·B + C` shape real tensor cores execute. Eliminates
/// the intermediate product matrix and the separate accumulation pass of
/// the blocked algorithms; the per-element sum order matches
/// `matmul_naive` followed by an element add, so results agree with the
/// unfused flow.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows × b.cols`.
pub fn matmul_acc<T: Scalar>(
    c: &mut MatrixViewMut<'_, T>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
) {
    matmul_acc_threads(c, a, b, 1);
}

/// [`matmul_acc`] with the deterministic row-band parallel path.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows × b.cols`.
pub fn matmul_acc_threads<T: Scalar>(
    c: &mut MatrixViewMut<'_, T>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    threads: usize,
) {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions must agree");
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "matmul_acc: output shape mismatch"
    );
    run::<T, true>(c, a, b, threads);
}

/// Unified entry point for the executor layer: `C (+)= A·B` with the
/// accumulate flag decided at runtime (the `TensorOp.accumulate` bit of
/// `tcu-core`'s IR dispatches here). Overwrite mode writes every element
/// of `c`, so the destination needs no pre-zeroing.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows × b.cols`.
pub fn matmul_into<T: Scalar>(
    c: &mut MatrixViewMut<'_, T>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    accumulate: bool,
    threads: usize,
) {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions must agree");
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "matmul_acc: output shape mismatch"
    );
    if accumulate {
        run::<T, true>(c, a, b, threads);
    } else {
        run::<T, false>(c, a, b, threads);
    }
}

/// A left operand packed once into contiguous [`MR`]-row panels:
/// `panel t`, covering rows `[t·MR, t·MR + MR)`, stores those rows
/// back-to-back, each as its `k` values in column order (rows past the
/// ragged bottom edge are zero). Keeping the rows *row-major inside the
/// panel* lets the packed micro-kernel read `A` exactly like the view
/// kernel reads its rows — same loads, same codegen — with the panel
/// merely guaranteeing the rows sit on one or two cache lines instead
/// of a page apart. One pack per *strip* — not per invocation — is the
/// cache lever for blocked flows: a `d × √m` strip of a `d × d` matrix
/// has page-sized row strides (TLB-hostile, one cache line per row
/// touch), and the blocked algorithm re-streams it once per block
/// column. Packing converts all of those re-reads into sequential scans
/// of a compact buffer that stays cache-resident across uses.
#[derive(Clone, Debug)]
pub struct PackedA<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> PackedA<T> {
    /// Rows of the packed operand.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the packed operand.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes of packed storage — what a pack-cache accounts as "packed
    /// bytes moved" per miss (panel zero-padding included: the buffer is
    /// what the kernel actually scans).
    #[inline]
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }
}

/// Pack `a` into [`MR`]-row interleaved panels (see [`PackedA`]).
#[must_use]
pub fn pack_a<T: Scalar>(a: MatrixView<'_, T>) -> PackedA<T> {
    let (n, k) = (a.rows(), a.cols());
    let tiles = n.div_ceil(MR);
    let mut data = vec![T::ZERO; tiles * k * MR];
    for t in 0..tiles {
        let i0 = t * MR;
        let h = MR.min(n - i0);
        let panel = &mut data[t * k * MR..(t + 1) * k * MR];
        for r in 0..h {
            panel[r * k..(r + 1) * k].copy_from_slice(a.row(i0 + r));
        }
    }
    PackedA {
        rows: n,
        cols: k,
        data,
    }
}

/// Fused accumulate `C += A·B` with a pre-packed left operand
/// (serial; blocked callers parallelize across strips). Element results
/// and per-element accumulation order are identical to
/// [`matmul_acc`] — only the memory layout of `A` differs.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows × b.cols`.
pub fn matmul_acc_packed<T: Scalar>(
    c: &mut MatrixViewMut<'_, T>,
    a: &PackedA<T>,
    b: MatrixView<'_, T>,
) {
    matmul_packed_into(c, a, b, true);
}

/// Unified packed-strip entry for the executor layer: `C (+)= A·B` with
/// a pre-packed left operand and the accumulate flag decided at runtime —
/// the pack-cache execution path of `HostExecutor` dispatches here with
/// whatever `TensorOp.accumulate` says. Overwrite mode writes every
/// element of `c` (no pre-zeroing needed); both modes are bit-identical
/// to [`matmul_into`] on the unpacked view.
///
/// # Panics
/// Panics if `a.cols() != b.rows()` or `c` is not `a.rows × b.cols`.
pub fn matmul_packed_into<T: Scalar>(
    c: &mut MatrixViewMut<'_, T>,
    a: &PackedA<T>,
    b: MatrixView<'_, T>,
    accumulate: bool,
) {
    let (n, k, p) = (a.rows, a.cols, b.cols());
    assert_eq!(k, b.rows(), "matmul: inner dimensions must agree");
    assert_eq!(
        (c.rows(), c.cols()),
        (n, p),
        "matmul_acc: output shape mismatch"
    );
    if n == 0 || p == 0 {
        return;
    }
    if k == 0 {
        // An empty inner dimension accumulates nothing — but overwrite
        // mode must still zero the destination like `matmul_into` does.
        if !accumulate {
            for i in 0..n {
                c.row_mut(i).fill(T::ZERO);
            }
        }
        return;
    }
    let packed_b = pack_b(b);
    if accumulate {
        packed_band::<T, true>(a, &packed_b, k, p, c);
    } else {
        packed_band::<T, false>(a, &packed_b, k, p, c);
    }
}

/// Const-dimension dispatch for the packed band (same hot square shapes
/// as `mul_band`: fully unrolled inner products).
fn packed_band<T: Scalar, const ACC: bool>(
    a: &PackedA<T>,
    packed_b: &[T],
    k: usize,
    p: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    match (k, p) {
        (4, 4) => packed_band_impl::<T, ACC>(a, packed_b, 4, 4, c),
        (8, 8) => packed_band_impl::<T, ACC>(a, packed_b, 8, 8, c),
        (16, 16) => packed_band_impl::<T, ACC>(a, packed_b, 16, 16, c),
        (32, 32) => packed_band_impl::<T, ACC>(a, packed_b, 32, 32, c),
        _ => packed_band_impl::<T, ACC>(a, packed_b, k, p, c),
    }
}

#[inline(always)]
fn packed_band_impl<T: Scalar, const ACC: bool>(
    a: &PackedA<T>,
    packed_b: &[T],
    k: usize,
    p: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    let n = a.rows;
    let panels = p.div_ceil(NR);
    for (t, apanel) in a.data.chunks_exact(k * MR).enumerate() {
        let i0 = t * MR;
        let mr = MR.min(n - i0);
        for q in 0..panels {
            let j0 = q * NR;
            let w = NR.min(p - j0);
            let bpanel = &packed_b[q * k * NR..(q + 1) * k * NR];
            match mr {
                1 => micro_kernel_packed::<T, 1, ACC>(apanel, bpanel, k, j0, w, i0, c),
                2 => micro_kernel_packed::<T, 2, ACC>(apanel, bpanel, k, j0, w, i0, c),
                3 => micro_kernel_packed::<T, 3, ACC>(apanel, bpanel, k, j0, w, i0, c),
                _ => micro_kernel_packed::<T, MR, ACC>(apanel, bpanel, k, j0, w, i0, c),
            }
        }
    }
}

/// [`micro_kernel`] over a packed `A` panel: the panel's rows are
/// row-major slices, so this body is the view kernel's verbatim — only
/// the row pointers come from the compact panel instead of the strided
/// source. The `kk` loop ascends from zero accumulators — the exact
/// per-element order of `matmul_naive`, so results are bit-identical to
/// the view-reading kernel (spilling by add when `ACC`, by overwrite
/// else).
#[inline(always)]
fn micro_kernel_packed<T: Scalar, const RB: usize, const ACC: bool>(
    apanel: &[T],
    bpanel: &[T],
    k: usize,
    j0: usize,
    w: usize,
    i0: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    let mut acc = [[T::ZERO; NR]; RB];
    let mut arows: [&[T]; RB] = [&[]; RB];
    for (r, ar) in arows.iter_mut().enumerate() {
        *ar = &apanel[r * k..(r + 1) * k];
    }
    for kk in 0..k {
        let brow = &bpanel[kk * NR..kk * NR + NR];
        for r in 0..RB {
            let av = arows[r][kk];
            let accr = &mut acc[r];
            for jj in 0..NR {
                accr[jj] = accr[jj].mul_add(av, brow[jj]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut c.row_mut(i0 + r)[j0..j0 + w];
        if ACC {
            for (o, &v) in crow.iter_mut().zip(&accr[..w]) {
                *o = o.add(v);
            }
        } else {
            crow.copy_from_slice(&accr[..w]);
        }
    }
}

/// Shared driver: pack `B`, then run the band kernel serially or over
/// deterministic row bands. `ACC` selects accumulate-into vs overwrite.
fn run<T: Scalar, const ACC: bool>(
    c: &mut MatrixViewMut<'_, T>,
    a: MatrixView<'_, T>,
    b: MatrixView<'_, T>,
    threads: usize,
) {
    let (n, k, p) = (a.rows(), a.cols(), b.cols());
    if n == 0 || p == 0 {
        return;
    }
    let packed = pack_b(b);
    // Spawning scoped threads costs ~10µs each; a band below
    // MIN_BAND_ROWS rows is cheaper to compute than to dispatch, so
    // small invocations (every √m × √m base case, for one) stay serial
    // even when the caller opted into more workers. Results are
    // bit-identical either way, so the threshold is pure policy.
    let threads = threads.clamp(1, (n / MIN_BAND_ROWS).max(1));
    if threads == 1 {
        mul_band::<T, ACC>(a, &packed, k, p, &mut c.reborrow());
        return;
    }

    // Deterministic row bands: ⌈n/threads⌉-sized from the top, remainder
    // spread over the leading bands. Boundaries depend only on
    // (n, threads); each band's output is a disjoint mutable view.
    let base = n / threads;
    let extra = n % threads;
    std::thread::scope(|scope| {
        let mut rest = c.reborrow();
        let mut row = 0usize;
        for t in 0..threads {
            let h = base + usize::from(t < extra);
            if h == 0 {
                continue;
            }
            let (mut band_out, tail) = rest.split_at_row(h);
            rest = tail;
            let band_in = a.subview(row, 0, h, k);
            let packed_ref = &packed;
            scope.spawn(move || mul_band::<T, ACC>(band_in, packed_ref, k, p, &mut band_out));
            row += h;
        }
    });
}

/// Pack `b` into column panels of width [`NR`]: panel `q` holds columns
/// `[q·NR, q·NR + NR)` as `k` consecutive rows of `NR` elements
/// (zero-padded on the ragged right edge). One pack per invocation makes
/// every micro-kernel `B` access a contiguous forward scan.
fn pack_b<T: Scalar>(b: MatrixView<'_, T>) -> Vec<T> {
    let (k, p) = (b.rows(), b.cols());
    let panels = p.div_ceil(NR).max(1);
    let mut packed = vec![T::ZERO; panels * k * NR];
    for q in 0..panels {
        let j0 = q * NR;
        let w = NR.min(p.saturating_sub(j0));
        if w == 0 {
            continue;
        }
        let panel = &mut packed[q * k * NR..(q + 1) * k * NR];
        for kk in 0..k {
            panel[kk * NR..kk * NR + w].copy_from_slice(&b.row(kk)[j0..j0 + w]);
        }
    }
    packed
}

/// Serial tiled kernel over one row band: `c` is the band's `h × p`
/// output view (possibly strided), `packed` the full packed `B`.
///
/// The hot shapes are square `√m × √m` right operands; dispatching them
/// to inlined copies of the band loop with *literal* dimensions lets the
/// compiler fully unroll the inner product and keep the register tile
/// clean (the runtime-dimension fallback is ~2× slower on the `√m = 16`
/// shape). All arms run identical code, so results are identical.
fn mul_band<T: Scalar, const ACC: bool>(
    a: MatrixView<'_, T>,
    packed: &[T],
    k: usize,
    p: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    match (k, p) {
        (4, 4) => mul_band_impl::<T, ACC>(a, packed, 4, 4, c),
        (8, 8) => mul_band_impl::<T, ACC>(a, packed, 8, 8, c),
        (16, 16) => mul_band_impl::<T, ACC>(a, packed, 16, 16, c),
        (32, 32) => mul_band_impl::<T, ACC>(a, packed, 32, 32, c),
        _ => mul_band_impl::<T, ACC>(a, packed, k, p, c),
    }
}

#[inline(always)]
fn mul_band_impl<T: Scalar, const ACC: bool>(
    a: MatrixView<'_, T>,
    packed: &[T],
    k: usize,
    p: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    let h = a.rows();
    debug_assert_eq!((c.rows(), c.cols()), (h, p));
    let panels = p.div_ceil(NR);
    let mut i0 = 0usize;
    while i0 < h {
        let mr = MR.min(h - i0);
        for q in 0..panels {
            let j0 = q * NR;
            let w = NR.min(p - j0);
            let panel = &packed[q * k * NR..(q + 1) * k * NR];
            if mr == MR {
                micro_kernel::<T, MR, ACC>(a, i0, panel, k, j0, w, c);
            } else {
                match mr {
                    1 => micro_kernel::<T, 1, ACC>(a, i0, panel, k, j0, w, c),
                    2 => micro_kernel::<T, 2, ACC>(a, i0, panel, k, j0, w, c),
                    _ => micro_kernel::<T, 3, ACC>(a, i0, panel, k, j0, w, c),
                }
            }
        }
        i0 += mr;
    }
}

/// `RB × NR` register tile: accumulate rows `[i0, i0 + RB)` of the band
/// against one packed panel, then spill to `c` (overwriting, or adding
/// when `ACC`). The `kk` loop ascends from zero accumulators — the exact
/// per-element order of `matmul_naive`.
#[inline(always)]
fn micro_kernel<T: Scalar, const RB: usize, const ACC: bool>(
    a: MatrixView<'_, T>,
    i0: usize,
    panel: &[T],
    k: usize,
    j0: usize,
    w: usize,
    c: &mut MatrixViewMut<'_, T>,
) {
    let mut acc = [[T::ZERO; NR]; RB];
    let mut arows: [&[T]; RB] = [&[]; RB];
    for (r, ar) in arows.iter_mut().enumerate() {
        *ar = a.row(i0 + r);
    }
    for kk in 0..k {
        let brow = &panel[kk * NR..kk * NR + NR];
        for r in 0..RB {
            let av = arows[r][kk];
            let accr = &mut acc[r];
            for jj in 0..NR {
                accr[jj] = accr[jj].mul_add(av, brow[jj]);
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        let crow = &mut c.row_mut(i0 + r)[j0..j0 + w];
        if ACC {
            for (o, &v) in crow.iter_mut().zip(&accr[..w]) {
                *o = o.add(v);
            }
        } else {
            crow.copy_from_slice(&accr[..w]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::modular::Fp61;
    use crate::ops::matmul_naive;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| {
            ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
        })
    }

    #[test]
    fn tiled_matches_naive_over_shapes() {
        for (n, k, p) in [
            (1usize, 1usize, 1usize),
            (4, 4, 4),
            (5, 3, 7),
            (16, 16, 16),
            (33, 16, 16),
            (512, 16, 16),
            (7, 1, 9),
            (2, 19, 31),
            (13, 8, 8),
        ] {
            let a = pseudo(n, k, 1);
            let b = pseudo(k, p, 2);
            assert_eq!(
                matmul(a.view(), b.view()),
                matmul_naive(&a, &b),
                "{n}x{k}x{p}"
            );
        }
    }

    #[test]
    fn tiled_on_strided_views_matches_copies() {
        let big_a = pseudo(20, 24, 3);
        let big_b = pseudo(24, 24, 4);
        let av = big_a.subview(2, 3, 9, 5);
        let bv = big_b.subview(1, 7, 5, 11);
        let want = matmul_naive(&big_a.block(2, 3, 9, 5), &big_b.block(1, 7, 5, 11));
        assert_eq!(matmul(av, bv), want);
    }

    #[test]
    fn parallel_bands_are_bit_identical() {
        // 517 rows: 4 real bands (≥ MIN_BAND_ROWS each) with a ragged
        // remainder spread over the leading ones.
        let a = pseudo(517, 16, 5);
        let b = pseudo(16, 16, 6);
        let serial = matmul(a.view(), b.view());
        for threads in [2usize, 3, 4, 7, 64] {
            assert_eq!(
                matmul_threads(a.view(), b.view(), threads),
                serial,
                "threads = {threads}"
            );
        }
        // Small operands fall back to the serial kernel regardless.
        let small = pseudo(37, 16, 7);
        assert_eq!(
            matmul_threads(small.view(), b.view(), 8),
            matmul(small.view(), b.view())
        );
    }

    #[test]
    fn float_results_equal_naive() {
        let a = Matrix::from_fn(23, 12, |i, j| (i as f64 - 3.5) * 0.25 + j as f64 * 0.125);
        let b = Matrix::from_fn(12, 17, |i, j| (j as f64 - 8.0) * 0.5 - i as f64 * 0.0625);
        assert_eq!(matmul(a.view(), b.view()), matmul_naive(&a, &b));
        assert_eq!(matmul_threads(a.view(), b.view(), 3), matmul_naive(&a, &b));
    }

    #[test]
    fn field_and_complex_scalars() {
        let a = Matrix::from_fn(9, 6, |i, j| Fp61::new((i as u64 * 131 + j as u64) << 7));
        let b = Matrix::from_fn(6, 10, |i, j| Fp61::new((j as u64 * 31 + i as u64) << 9));
        assert_eq!(matmul(a.view(), b.view()), matmul_naive(&a, &b));

        let ca = Matrix::from_fn(8, 8, |i, j| Complex64::root_of_unity(16, (i * j) as i64));
        let cb = Matrix::from_fn(8, 8, |i, j| Complex64::root_of_unity(16, (i + j) as i64));
        assert_eq!(matmul(ca.view(), cb.view()), matmul_naive(&ca, &cb));
    }

    #[test]
    fn fused_accumulate_equals_product_plus_add() {
        let big = pseudo(30, 40, 11);
        let wts = pseudo(20, 20, 12);
        let a = big.subview(1, 2, 21, 16);
        let b = wts.subview(3, 1, 16, 16);
        // Unfused reference: C0 + A·B.
        let mut want = pseudo(21, 16, 13);
        want.add_assign(&matmul(a, b));
        // Fused, serial and threaded, must agree exactly.
        for threads in [1usize, 3, 5] {
            let mut c = pseudo(21, 16, 13);
            matmul_acc_threads(&mut c.view_mut(), a, b, threads);
            assert_eq!(c, want, "threads = {threads}");
        }
    }

    #[test]
    fn fused_accumulate_into_strided_block() {
        let a = pseudo(8, 4, 21);
        let b = pseudo(4, 4, 22);
        let mut want_inner = pseudo(8, 4, 23);
        want_inner.add_assign(&matmul(a.view(), b.view()));

        // Destination is a block of a larger matrix; surrounding entries
        // must be untouched.
        let mut host = Matrix::<i64>::zeros(12, 10);
        host.set_block_view(2, 3, pseudo(8, 4, 23).view());
        let before = host.clone();
        let mut dst = host.subview_mut(2, 3, 8, 4);
        matmul_acc(&mut dst, a.view(), b.view());
        assert_eq!(host.block(2, 3, 8, 4), want_inner);
        for i in 0..12 {
            for j in 0..10 {
                if !(2..10).contains(&i) || !(3..7).contains(&j) {
                    assert_eq!(host[(i, j)], before[(i, j)], "({i},{j}) clobbered");
                }
            }
        }
    }

    #[test]
    fn runtime_dispatch_matches_const_paths() {
        let a = pseudo(21, 16, 31);
        let b = pseudo(16, 16, 32);
        let want = matmul(a.view(), b.view());

        // Overwrite mode must ignore (and fully replace) prior contents.
        let mut c = pseudo(21, 16, 33);
        matmul_into(&mut c.view_mut(), a.view(), b.view(), false, 1);
        assert_eq!(c, want);

        let mut acc = pseudo(21, 16, 33);
        let mut want_acc = pseudo(21, 16, 33);
        want_acc.add_assign(&want);
        matmul_into(&mut acc.view_mut(), a.view(), b.view(), true, 2);
        assert_eq!(acc, want_acc);
    }

    #[test]
    fn packed_a_strip_path_is_bit_identical() {
        // The blocked-flow shape: a tall strided strip re-used against
        // many weight blocks.
        let d = 96usize;
        let s = 16usize;
        let a = pseudo(d, d, 41);
        let b = pseudo(d, d, 42);
        for k in [0usize, 2] {
            let strip = a.subview(0, k * s, d, s);
            let pa = pack_a(strip);
            assert_eq!((pa.rows(), pa.cols()), (d, s));
            for j in 0..d / s {
                let blk = b.subview(k * s, j * s, s, s);
                let mut want = pseudo(d, s, 43 + j as i64);
                let mut got = want.clone();
                matmul_acc(&mut want.view_mut(), strip, blk);
                matmul_acc_packed(&mut got.view_mut(), &pa, blk);
                assert_eq!(got, want, "k={k} j={j}");
            }
        }
    }

    #[test]
    fn packed_a_handles_ragged_rows_and_float() {
        let a = Matrix::from_fn(11, 7, |i, j| (i as f64 - 2.5) * 0.5 + j as f64 * 0.125);
        let b = Matrix::from_fn(7, 5, |i, j| (j as f64 - 1.0) * 0.25 - i as f64 * 0.0625);
        let mut want = Matrix::<f64>::zeros(11, 5);
        matmul_acc(&mut want.view_mut(), a.view(), b.view());
        let mut got = Matrix::<f64>::zeros(11, 5);
        matmul_acc_packed(&mut got.view_mut(), &pack_a(a.view()), b.view());
        assert_eq!(got, want);
    }

    #[test]
    fn packed_overwrite_matches_matmul_into() {
        let a = pseudo(21, 16, 51);
        let b = pseudo(16, 16, 52);
        let mut want = pseudo(21, 16, 53);
        matmul_into(&mut want.view_mut(), a.view(), b.view(), false, 1);
        // Overwrite mode must fully replace prior contents.
        let mut got = pseudo(21, 16, 53);
        matmul_packed_into(&mut got.view_mut(), &pack_a(a.view()), b.view(), false);
        assert_eq!(got, want);
        assert_eq!(
            pack_a(a.view()).bytes(),
            24 * 16 * std::mem::size_of::<i64>()
        );
    }

    #[test]
    fn packed_overwrite_with_empty_inner_zeroes_output() {
        let a = Matrix::<i64>::zeros(3, 0);
        let b = Matrix::<i64>::zeros(0, 5);
        let mut c = pseudo(3, 5, 54);
        matmul_packed_into(&mut c.view_mut(), &pack_a(a.view()), b.view(), false);
        assert_eq!(c, Matrix::<i64>::zeros(3, 5));
        // Accumulate mode leaves the destination untouched.
        let mut c2 = pseudo(3, 5, 54);
        let before = c2.clone();
        matmul_packed_into(&mut c2.view_mut(), &pack_a(a.view()), b.view(), true);
        assert_eq!(c2, before);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::<i64>::zeros(0, 4);
        let b = pseudo(4, 4, 7);
        assert_eq!(matmul(a.view(), b.view()), Matrix::<i64>::zeros(0, 4));
        let a = pseudo(3, 4, 8);
        let b = Matrix::<i64>::zeros(4, 0);
        assert_eq!(matmul(a.view(), b.view()), Matrix::<i64>::zeros(3, 0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn rejects_mismatched_inner_dims() {
        let a = pseudo(3, 4, 9);
        let b = pseudo(5, 3, 10);
        let _ = matmul(a.view(), b.view());
    }
}
