//! Complex arithmetic for the DFT algorithms (paper §4.5).
//!
//! The paper assumes "the TCU model can perform operations on complex
//! numbers", noting the assumption can be removed with constant slowdown
//! (four real multiplies per complex multiply). We take the same route:
//! [`Complex64`] is a [`Scalar`], so the simulated tensor unit multiplies
//! complex matrices directly, and the model charge is unchanged up to the
//! constant the paper also absorbs.

use crate::scalar::{Field, Scalar};

/// A double-precision complex number.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    /// Construct from rectangular coordinates.
    #[inline]
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The point `e^{iθ}` on the unit circle.
    #[inline]
    #[must_use]
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Primitive `n`-th root-of-unity power used by DFT matrices:
    /// `ω_n^k = e^{-2πik/n}` (the paper's `W_{r,c} = e^{-(2πi/n)rc}`).
    #[inline]
    #[must_use]
    pub fn root_of_unity(n: usize, k: i64) -> Self {
        let theta = -2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
        Self::cis(theta)
    }

    /// Complex conjugate.
    #[inline]
    #[must_use]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    #[must_use]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Real scaling.
    #[inline]
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Scalar for Complex64 {
    const ZERO: Self = Self { re: 0.0, im: 0.0 };
    const ONE: Self = Self { re: 1.0, im: 0.0 };

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Field for Complex64 {
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn ring_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a.add(b), Complex64::new(4.0, 1.0));
        assert_eq!(a.sub(b), Complex64::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a.mul(b), Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.25);
        let b = Complex64::new(0.5, 3.0);
        let q = a.mul(b).div(b);
        assert!((q.re - a.re).abs() < EPS && (q.im - a.im).abs() < EPS);
    }

    #[test]
    fn roots_of_unity_multiply() {
        // ω_8^1 · ω_8^3 = ω_8^4 = -1
        let w1 = Complex64::root_of_unity(8, 1);
        let w3 = Complex64::root_of_unity(8, 3);
        let p = w1.mul(w3);
        assert!((p.re + 1.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn nth_root_has_order_n() {
        let n = 12;
        let mut acc = Complex64::ONE;
        for _ in 0..n {
            acc = acc.mul(Complex64::root_of_unity(n, 1));
        }
        assert!((acc.re - 1.0).abs() < EPS && acc.im.abs() < EPS);
    }

    #[test]
    fn conj_and_abs() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj().im, -4.0);
        assert!((z.mul(z.conj()).re - 25.0).abs() < EPS);
    }
}
