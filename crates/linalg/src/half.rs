//! Software-emulated half precision — the paper's §6 open question on
//! "low numerical precision" made measurable.
//!
//! Real tensor units compute in reduced precision: NVIDIA TCs take
//! fp16 inputs (κ = 16, §3.1) with fp32 accumulation; the TPU multiplies
//! 8-bit integers into 32-bit accumulators. [`Half`] emulates an
//! IEEE-754 binary16 *storage* type: every value is rounded to 11
//! significand bits (round-to-nearest-even) and clamped to the fp16
//! exponent range, while arithmetic happens in f64 and re-rounds — i.e.
//! fp16 operands with exact operations, the optimistic end of real
//! hardware. Running any generic TCU algorithm over `Half` instead of
//! `f64` measures precisely the precision loss the model currently
//! ignores (experiment EP2).

use crate::scalar::{Field, Scalar};

/// An f64 value constrained to IEEE binary16 precision and range.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Half(f64);

/// Largest finite fp16 value.
pub const HALF_MAX: f64 = 65504.0;
/// Smallest positive normal fp16 value.
pub const HALF_MIN_POSITIVE: f64 = 6.103_515_625e-5;

impl Half {
    /// Quantize an `f64` to fp16 precision/range.
    #[must_use]
    pub fn new(x: f64) -> Self {
        Self(quantize(x))
    }

    /// The stored (already-quantized) value.
    #[inline]
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }
}

/// Round an f64 to the nearest representable binary16 value (to-nearest-
/// even on the 10-bit stored significand), saturating to ±∞ past
/// [`HALF_MAX`] and flushing subnormals' extra bits like hardware does.
fn quantize(x: f64) -> f64 {
    if x == 0.0 || x.is_nan() || x.is_infinite() {
        return x;
    }
    if x.abs() > HALF_MAX {
        return if x > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    // Scale so the significand's 10 fraction bits land on integers,
    // round half-to-even, and scale back. exp = floor(log2 |x|).
    let exp = x.abs().log2().floor();
    let exp = exp.max(-14.0); // subnormal range shares the -14 exponent
    let ulp = (exp - 10.0).exp2();
    let q = (x / ulp).round_ties_even() * ulp;
    if q.abs() > HALF_MAX {
        return if q > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        };
    }
    q
}

impl From<f64> for Half {
    fn from(x: f64) -> Self {
        Self::new(x)
    }
}

impl From<Half> for f64 {
    fn from(h: Half) -> f64 {
        h.0
    }
}

impl Scalar for Half {
    const ZERO: Self = Self(0.0);
    const ONE: Self = Self(1.0);

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.0 + rhs.0)
    }

    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.0 - rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(self.0 * rhs.0)
    }
}

impl Field for Half {
    #[inline]
    fn div(self, rhs: Self) -> Self {
        Self::new(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_survive() {
        for i in -2048i32..=2048 {
            let h = Half::new(f64::from(i));
            assert_eq!(h.value(), f64::from(i), "fp16 holds integers up to 2^11");
        }
    }

    #[test]
    fn rounding_drops_low_bits() {
        // 2049 is not representable in fp16 (11-bit significand):
        // rounds to 2048 (ties to even).
        assert_eq!(Half::new(2049.0).value(), 2048.0);
        assert_eq!(Half::new(2051.0).value(), 2052.0);
        // 1/3 rounds to the nearest fp16 value, within half an ulp (2^-12).
        let third = Half::new(1.0 / 3.0).value();
        assert!((third - 1.0 / 3.0).abs() <= (1.0f64 / 4096.0) / 2.0);
        assert_ne!(third, 1.0 / 3.0);
    }

    #[test]
    fn saturates_to_infinity() {
        assert!(Half::new(70000.0).value().is_infinite());
        assert!(Half::new(-70000.0).value().is_infinite());
        assert_eq!(Half::new(HALF_MAX).value(), HALF_MAX);
    }

    #[test]
    fn arithmetic_requantizes() {
        // 2048 + 1 is not representable: absorbed (the classic fp16 trap).
        let a = Half::new(2048.0);
        let b = Half::new(1.0);
        assert_eq!(a.add(b).value(), 2048.0);
        // But 1024 + 1 is fine.
        assert_eq!(Half::new(1024.0).add(b).value(), 1025.0);
    }

    #[test]
    fn idempotent_quantization() {
        for &x in &[0.1, std::f64::consts::PI, -123.456, 0.0001, 60000.0] {
            let once = Half::new(x).value();
            assert_eq!(Half::new(once).value(), once);
        }
    }

    #[test]
    fn field_division() {
        let x = Half::new(10.0).div(Half::new(4.0));
        assert_eq!(x.value(), 2.5);
    }
}
