//! # tcu-linalg — dense linear-algebra substrate for the TCU reproduction
//!
//! This crate is the bottom layer of the workspace: it defines the scalar
//! (semiring) abstraction, a row-major dense [`Matrix`], complex and modular
//! arithmetic, and *host* (plain RAM) reference implementations of the
//! kernels the paper's TCU algorithms are compared against: naive and
//! Strassen matrix multiplication, and Gaussian elimination.
//!
//! Everything here is deliberately dependency-free; the TCU machine model
//! (`tcu-core`) and the algorithm collection (`tcu-algos`) build on top.

pub mod complex;
pub mod decomp;
pub mod half;
pub mod kernels;
pub mod matrix;
pub mod modular;
pub mod ops;
pub mod scalar;
pub mod strassen;
pub mod view;

pub use complex::Complex64;
pub use half::Half;
pub use matrix::Matrix;
pub use modular::Fp61;
pub use scalar::{Field, Scalar};
pub use view::{MatrixView, MatrixViewMut};
