//! Row-major dense matrix, the operand type of the simulated tensor unit.
//!
//! The paper manipulates matrices through three structural operations:
//! square *blocks* `X_{i,j}` (blocked Gaussian elimination, transitive
//! closure), vertical *strips* of width `√m` (the tall-left-operand
//! streaming of Theorem 2), and transposition (Cooley–Tukey DFT). All
//! three are provided here as explicit copies: in the TCU model, operand
//! marshalling is part of the tensor instruction's `O(n√m + ℓ)` charge, so
//! the simulator does not cost these copies separately (see
//! `tcu-core::machine` for the accounting conventions).

use crate::scalar::Scalar;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` matrix stored in row-major order.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// An all-zeros `rows × cols` matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::ZERO; rows * cols],
        }
    }

    /// The `n × n` identity.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing row-major buffer (`data.len()` must be `rows*cols`).
    ///
    /// # Panics
    /// Panics if the buffer length does not match the dimensions.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Build from nested rows (each inner slice is one row).
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix is square.
    #[inline]
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copy out the `h × w` block whose top-left corner is `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    #[must_use]
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let mut data = Vec::with_capacity(h * w);
        for i in 0..h {
            let base = (r0 + i) * self.cols + c0;
            data.extend_from_slice(&self.data[base..base + w]);
        }
        Self {
            rows: h,
            cols: w,
            data,
        }
    }

    /// Overwrite the block at `(r0, c0)` with `src`.
    ///
    /// # Panics
    /// Panics if `src` exceeds the matrix bounds at that offset.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Self) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "set_block out of bounds"
        );
        for i in 0..src.rows {
            let dst = (r0 + i) * self.cols + c0;
            self.data[dst..dst + src.cols].copy_from_slice(src.row(i));
        }
    }

    /// Vertical strip: all rows, columns `[c0, c0+w)`. This is the shape of
    /// the tall left operand streamed through the tensor unit (Theorem 2).
    #[must_use]
    pub fn col_strip(&self, c0: usize, w: usize) -> Self {
        self.block(0, c0, self.rows, w)
    }

    /// The transpose, gathered in 32×32 cache tiles (see
    /// [`crate::view::MatrixView::transpose`], which this delegates to).
    #[must_use]
    pub fn transpose(&self) -> Self {
        self.view().transpose()
    }

    /// Zero-pad (or no-op) to at least `rows × cols`, keeping content at the
    /// top-left. Used to round operands up to the tensor unit's fixed
    /// `√m × √m` footprint. Prefer [`Matrix::into_padded`] when the
    /// original is consumable — the no-op case then costs nothing.
    #[must_use]
    pub fn pad_to(&self, rows: usize, cols: usize) -> Self {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "pad_to cannot shrink"
        );
        if rows == self.rows && cols == self.cols {
            return self.clone();
        }
        let mut out = Self::zeros(rows, cols);
        out.set_block(0, 0, self);
        out
    }

    /// Consuming [`Matrix::pad_to`]: when the matrix already has the
    /// requested shape it is returned as-is — no clone, no traversal.
    ///
    /// # Panics
    /// Panics if the target shape shrinks either dimension.
    #[must_use]
    pub fn into_padded(self, rows: usize, cols: usize) -> Self {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "into_padded cannot shrink"
        );
        if rows == self.rows && cols == self.cols {
            return self;
        }
        let mut out = Self::zeros(rows, cols);
        out.set_block(0, 0, &self);
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.add(b))
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn sub(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a.sub(b))
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn add_assign(&mut self, rhs: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add_assign: shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a = a.add(b);
        }
    }

    /// Map every element through `f`.
    #[must_use]
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Multiply every element by `s`.
    #[must_use]
    pub fn scale(&self, s: T) -> Self {
        self.map(|x| x.mul(s))
    }

    /// `true` iff every element equals `T::ZERO`.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == T::ZERO)
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  ")?;
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:?} ", self[(i, j)])?;
            }
            if self.cols > show_cols {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(r: usize, c: usize) -> Matrix<i64> {
        Matrix::from_fn(r, c, |i, j| (i * c + j) as i64)
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::<f64>::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.is_zero());
        let id = Matrix::<f64>::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1i64, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6);
        assert_eq!(m.row(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "all rows must have equal length")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1i64, 2], vec![3]]);
    }

    #[test]
    fn block_roundtrip() {
        let m = iota(6, 6);
        let b = m.block(2, 3, 2, 2);
        assert_eq!(b[(0, 0)], m[(2, 3)]);
        assert_eq!(b[(1, 1)], m[(3, 4)]);
        let mut n = Matrix::<i64>::zeros(6, 6);
        n.set_block(2, 3, &b);
        assert_eq!(n[(2, 3)], m[(2, 3)]);
        assert_eq!(n[(3, 4)], m[(3, 4)]);
        assert_eq!(n[(0, 0)], 0);
    }

    #[test]
    #[should_panic(expected = "block out of bounds")]
    fn block_out_of_bounds_panics() {
        let m = iota(4, 4);
        let _ = m.block(3, 3, 2, 2);
    }

    #[test]
    fn col_strip_is_vertical() {
        let m = iota(4, 6);
        let s = m.col_strip(2, 2);
        assert_eq!((s.rows(), s.cols()), (4, 2));
        assert_eq!(s[(3, 1)], m[(3, 3)]);
    }

    #[test]
    fn transpose_involution() {
        let m = iota(3, 5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn blocked_transpose_matches_gather_across_tile_edges() {
        // Sizes straddling the 32×32 tile: exact multiples, ragged tails,
        // thin shapes.
        for (r, c) in [(32, 32), (33, 31), (64, 40), (1, 100), (100, 1), (70, 70)] {
            let m = iota(r, c);
            let t = m.transpose();
            assert_eq!((t.rows(), t.cols()), (c, r), "{r}x{c}");
            let want = Matrix::from_fn(c, r, |i, j| m[(j, i)]);
            assert_eq!(t, want, "{r}x{c}");
        }
    }

    #[test]
    fn into_padded_noop_and_grow() {
        let m = iota(3, 3);
        let same = m.clone().into_padded(3, 3);
        assert_eq!(same, m);
        let grown = m.clone().into_padded(5, 4);
        assert_eq!((grown.rows(), grown.cols()), (5, 4));
        assert_eq!(grown[(2, 2)], m[(2, 2)]);
        assert_eq!(grown[(4, 3)], 0);
        assert_eq!(grown, m.pad_to(5, 4));
    }

    #[test]
    #[should_panic(expected = "into_padded cannot shrink")]
    fn into_padded_rejects_shrink() {
        let _ = iota(3, 3).into_padded(2, 3);
    }

    #[test]
    fn pad_to_keeps_content() {
        let m = iota(2, 2);
        let p = m.pad_to(4, 3);
        assert_eq!((p.rows(), p.cols()), (4, 3));
        assert_eq!(p[(1, 1)], m[(1, 1)]);
        assert_eq!(p[(3, 2)], 0);
        // no-op pad returns an identical matrix
        assert_eq!(m.pad_to(2, 2), m);
    }

    #[test]
    fn arithmetic() {
        let a = iota(2, 2);
        let b = Matrix::from_rows(&[vec![1i64, 1], vec![1, 1]]);
        assert_eq!(a.add(&b).sub(&b), a);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c, a.add(&b));
        assert_eq!(a.scale(2)[(1, 1)], 6);
        assert_eq!(a.map(|x| x as f64)[(1, 0)], 2.0);
    }
}
