//! Host Strassen multiplication — the RAM-model "Strassen-like algorithm"
//! of §4.1 with parameters `n₀ = 4, p₀ = 7` (ω₀ = log₄7 ≈ 1.4037).
//!
//! Used as (a) the correctness oracle for the TCU Strassen recursion of
//! Theorem 1 and (b) the RAM baseline in experiment E1. Matrices must be
//! square with power-of-two dimension; recursion falls back to the naive
//! kernel below a threshold, as production Strassen implementations do.

use crate::matrix::Matrix;
use crate::ops::matmul_naive;
use crate::scalar::Scalar;

/// Default dimension below which recursion switches to the naive kernel.
pub const DEFAULT_CUTOFF: usize = 32;

/// Strassen product of two square power-of-two matrices.
///
/// # Panics
/// Panics if operands are not square, of equal dimension, and a power of two.
#[must_use]
pub fn matmul_strassen<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    matmul_strassen_with_cutoff(a, b, DEFAULT_CUTOFF)
}

/// Strassen product with an explicit recursion cutoff (dimension at or
/// below which the naive kernel is used). Exposed for ablation tests.
///
/// # Panics
/// Panics if operands are not square, of equal dimension, and a power of two.
#[must_use]
pub fn matmul_strassen_with_cutoff<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    cutoff: usize,
) -> Matrix<T> {
    let n = a.rows();
    assert!(
        a.is_square() && b.is_square() && b.rows() == n,
        "strassen: square equal dims"
    );
    assert!(
        n.is_power_of_two(),
        "strassen: dimension must be a power of two"
    );
    strassen_rec(a, b, cutoff.max(1))
}

fn strassen_rec<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, cutoff: usize) -> Matrix<T> {
    let n = a.rows();
    if n <= cutoff {
        return matmul_naive(a, b);
    }
    let h = n / 2;
    let (a11, a12, a21, a22) = (
        a.block(0, 0, h, h),
        a.block(0, h, h, h),
        a.block(h, 0, h, h),
        a.block(h, h, h, h),
    );
    let (b11, b12, b21, b22) = (
        b.block(0, 0, h, h),
        b.block(0, h, h, h),
        b.block(h, 0, h, h),
        b.block(h, h, h, h),
    );

    // The seven Strassen products.
    let m1 = strassen_rec(&a11.add(&a22), &b11.add(&b22), cutoff);
    let m2 = strassen_rec(&a21.add(&a22), &b11, cutoff);
    let m3 = strassen_rec(&a11, &b12.sub(&b22), cutoff);
    let m4 = strassen_rec(&a22, &b21.sub(&b11), cutoff);
    let m5 = strassen_rec(&a11.add(&a12), &b22, cutoff);
    let m6 = strassen_rec(&a21.sub(&a11), &b11.add(&b12), cutoff);
    let m7 = strassen_rec(&a12.sub(&a22), &b21.add(&b22), cutoff);

    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);

    let mut c = Matrix::zeros(n, n);
    c.set_block(0, 0, &c11);
    c.set_block(0, h, &c12);
    c.set_block(h, 0, &c21);
    c.set_block(h, h, &c22);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
        // Deterministic pseudo-random integer fill (small values so i64
        // products stay exact through Strassen's adds/subs).
        Matrix::from_fn(r, c, |i, j| {
            let x = (i as i64)
                .wrapping_mul(31)
                .wrapping_add((j as i64).wrapping_mul(17))
                .wrapping_add(seed);
            (x.wrapping_mul(2654435761) >> 7) % 100
        })
    }

    #[test]
    fn matches_naive_across_sizes() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let a = pseudo(n, n, 1);
            let b = pseudo(n, n, 2);
            assert_eq!(
                matmul_strassen_with_cutoff(&a, &b, 2),
                matmul_naive(&a, &b),
                "n = {n}"
            );
        }
    }

    #[test]
    fn cutoff_does_not_change_result() {
        let a = pseudo(32, 32, 3);
        let b = pseudo(32, 32, 4);
        let want = matmul_naive(&a, &b);
        for cutoff in [1usize, 2, 8, 16, 32, 64] {
            assert_eq!(
                matmul_strassen_with_cutoff(&a, &b, cutoff),
                want,
                "cutoff={cutoff}"
            );
        }
    }

    #[test]
    fn works_over_f64() {
        let a = Matrix::from_fn(16, 16, |i, j| (i as f64) * 0.5 - (j as f64) * 0.25);
        let b = Matrix::from_fn(16, 16, |i, j| 1.0 / (1.0 + i as f64 + j as f64));
        let diff = crate::ops::max_abs_diff(
            &matmul_strassen_with_cutoff(&a, &b, 2),
            &matmul_naive(&a, &b),
        );
        assert!(diff < 1e-9, "diff = {diff}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let a = Matrix::<i64>::zeros(6, 6);
        let _ = matmul_strassen(&a, &a);
    }
}
