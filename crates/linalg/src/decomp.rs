//! Host Gaussian elimination — the unblocked forward phase of §4.2
//! (paper Figure 2) plus back substitution, used both as the correctness
//! oracle for the blocked TCU algorithm (Theorem 4, paper Figure 4) and as
//! the `Θ(r³)` RAM baseline in experiment E4.
//!
//! Following the paper, a system of `r−1` equations in `r−1` unknowns is
//! represented as an `r × r` matrix `c` whose row `i` holds the coefficient
//! row `a_{i,*}` followed by the right-hand side `b_i`, with a final
//! all-zero row. The forward phase triangularizes in place without
//! pivoting, so callers must supply systems with non-vanishing leading
//! minors (diagonally dominant matrices in all our workloads).

use crate::matrix::Matrix;
use crate::scalar::Field;

/// Assemble the paper's `r × r` augmented representation from an
/// `(r−1) × (r−1)` coefficient matrix and a right-hand side.
///
/// # Panics
/// Panics unless `a` is square and `b.len() == a.rows()`.
#[must_use]
pub fn augmented_from<T: Field>(a: &Matrix<T>, b: &[T]) -> Matrix<T> {
    assert!(a.is_square(), "coefficient matrix must be square");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let r = a.rows() + 1;
    Matrix::from_fn(r, r, |i, j| {
        if i + 1 == r {
            T::ZERO
        } else if j + 1 == r {
            b[i]
        } else {
            a[(i, j)]
        }
    })
}

/// Forward phase of Gaussian elimination without pivoting, exactly the
/// triple loop of the paper's Figure 2 (0-indexed): for each pivot `k`,
/// each lower row `i > k` and each column `j > k`,
/// `c[i,j] ← c[i,j] + (−c[i,k]/c[k,k])·c[k,j]`.
///
/// Returns the number of scalar operations performed (the RAM-model /
/// TCU-CPU charge for this baseline): three ops (mul, div, sub) per inner
/// iteration, matching how the blocked kernels are costed.
pub fn ge_forward_host<T: Field>(c: &mut Matrix<T>) -> u64 {
    let r = c.rows();
    assert!(c.is_square(), "augmented matrix must be square");
    let mut ops = 0u64;
    if r < 2 {
        return ops;
    }
    // Pivots k = 0 .. r−3 (paper: 1 .. √n − 2).
    for k in 0..r.saturating_sub(2) {
        let pivot = c[(k, k)];
        // Rows i = k+1 .. r−2 (the final all-zero row is never touched).
        for i in k + 1..r - 1 {
            let factor = c[(i, k)].div(pivot);
            for j in k + 1..r {
                let delta = factor.mul(c[(k, j)]);
                c[(i, j)] = c[(i, j)].sub(delta);
                ops += 3;
            }
        }
    }
    ops
}

/// Back substitution on a forward-eliminated augmented matrix: recovers
/// `x_0 .. x_{r−2}` from the upper-triangular system (paper §4.2's `Θ(r²)`
/// second phase).
///
/// # Panics
/// Panics if a diagonal pivot is exactly zero (singular system).
#[must_use]
pub fn back_substitute<T: Field>(c: &Matrix<T>) -> Vec<T> {
    let r = c.rows();
    let n = r - 1; // unknowns
    let mut x = vec![T::ZERO; n];
    for i in (0..n).rev() {
        let mut acc = c[(i, n)]; // rhs column
        for j in i + 1..n {
            acc = acc.sub(c[(i, j)].mul(x[j]));
        }
        assert!(
            c[(i, i)] != T::ZERO,
            "zero pivot: system is singular for no-pivoting GE"
        );
        x[i] = acc.div(c[(i, i)]);
    }
    x
}

/// Maximum absolute residual `‖Ax − b‖_∞` of a candidate solution.
#[must_use]
pub fn residual(a: &Matrix<f64>, x: &[f64], b: &[f64]) -> f64 {
    let n = a.rows();
    let mut worst = 0.0f64;
    for i in 0..n {
        let mut s = 0.0;
        for j in 0..n {
            s += a[(i, j)] * x[j];
        }
        worst = worst.max((s - b[i]).abs());
    }
    worst
}

/// Deterministic diagonally-dominant test matrix: pseudo-random entries in
/// `(−1, 1)` with the diagonal boosted above each row's absolute sum, so
/// no-pivoting elimination is well defined and numerically tame.
#[must_use]
pub fn diag_dominant(n: usize, seed: u64) -> Matrix<f64> {
    let mut m = Matrix::from_fn(n, n, |i, j| {
        let h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i as u64) << 32 | j as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    });
    for i in 0..n {
        let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
        m[(i, i)] = row_sum + 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modular::Fp61;
    use crate::scalar::Scalar;

    #[test]
    fn solves_small_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0f64, 1.0], vec![1.0, 3.0]]);
        let b = [5.0, 10.0];
        let mut c = augmented_from(&a, &b);
        ge_forward_host(&mut c);
        let x = back_substitute(&c);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn residual_small_on_diag_dominant() {
        for n in [3usize, 7, 16, 33] {
            let a = diag_dominant(n, 42 + n as u64);
            let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.0).collect();
            let mut c = augmented_from(&a, &b);
            ge_forward_host(&mut c);
            let x = back_substitute(&c);
            assert!(residual(&a, &x, &b) < 1e-9, "n = {n}");
        }
    }

    #[test]
    fn op_count_matches_closed_form() {
        // Sum over k of (r-2-k) rows * (r-1-k) cols * 3 ops.
        let r = 9usize;
        let a = diag_dominant(r - 1, 7);
        let b = vec![1.0; r - 1];
        let mut c = augmented_from(&a, &b);
        let got = ge_forward_host(&mut c);
        let mut want = 0u64;
        for k in 0..r - 2 {
            want += 3 * ((r - 2 - k) as u64) * ((r - 1 - k) as u64);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn exact_over_prime_field() {
        // Build an exactly-solvable system over F_p: A = I + strictly upper
        // ones, x known, b = Ax.
        let n = 6;
        let a = Matrix::from_fn(n, n, |i, j| {
            if i == j {
                Fp61::new(5)
            } else if j > i {
                Fp61::new((i + j) as u64)
            } else {
                Fp61::new((3 * i + j) as u64 % 4)
            }
        });
        let x_true: Vec<Fp61> = (0..n).map(|i| Fp61::new(100 + i as u64)).collect();
        let b: Vec<Fp61> = (0..n)
            .map(|i| {
                (0..n).fold(Fp61::ZERO, |acc, j| {
                    crate::scalar::Scalar::add(
                        acc,
                        crate::scalar::Scalar::mul(a[(i, j)], x_true[j]),
                    )
                })
            })
            .collect();
        let mut c = augmented_from(&a, &b);
        ge_forward_host(&mut c);
        let x = back_substitute(&c);
        assert_eq!(x, x_true, "GE over F_p must be exact");
    }

    #[test]
    fn last_row_stays_zero() {
        let a = diag_dominant(5, 9);
        let b = vec![2.0; 5];
        let mut c = augmented_from(&a, &b);
        ge_forward_host(&mut c);
        for j in 0..c.cols() {
            assert_eq!(c[(c.rows() - 1, j)], 0.0);
        }
    }
}
