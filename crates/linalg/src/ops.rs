//! Host (plain-RAM) matrix kernels: the baselines every TCU algorithm is
//! checked against, plus comparison helpers used throughout the test
//! suites. "Host" means the classic `Θ(n^{3/2})`-operation definition-based
//! algorithms executed without the tensor unit; in the (m, ℓ)-TCU model
//! they cost one time unit per scalar operation.

use crate::complex::Complex64;
use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Definition-based matrix product `A·B` (the `Θ(n^{3/2})` semiring
/// algorithm the paper's lower bounds count against).
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul_naive<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<T> {
    assert_eq!(a.cols(), b.rows(), "matmul: inner dimensions must agree");
    let (n, k, p) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, p);
    for i in 0..n {
        for l in 0..k {
            let ail = a[(i, l)];
            let brow = b.row(l);
            let crow: &mut [T] = c.row_mut(i);
            for j in 0..p {
                // Same `mul_add` the tiled kernels use, so oracle and
                // kernels agree element-exactly on every scalar type.
                crow[j] = crow[j].mul_add(ail, brow[j]);
            }
        }
    }
    c
}

/// Number of scalar multiply-adds the naive product performs; the charge a
/// pure-CPU multiplication incurs in the TCU model.
#[must_use]
pub fn matmul_naive_cost(n: usize, k: usize, p: usize) -> u64 {
    (n as u64) * (k as u64) * (p as u64)
}

/// Largest absolute element-wise difference between two real matrices.
///
/// # Panics
/// Panics on shape mismatch.
#[must_use]
pub fn max_abs_diff(a: &Matrix<f64>, b: &Matrix<f64>) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Largest modulus of element-wise difference between two complex matrices.
///
/// # Panics
/// Panics on shape mismatch.
#[must_use]
pub fn max_abs_diff_c(a: &Matrix<Complex64>, b: &Matrix<Complex64>) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x.sub(y).abs())
        .fold(0.0, f64::max)
}

/// `true` iff `a` and `b` agree element-wise within absolute tolerance.
#[must_use]
pub fn approx_eq(a: &Matrix<f64>, b: &Matrix<f64>, tol: f64) -> bool {
    max_abs_diff(a, b) <= tol
}

/// Relative comparison suited to Gaussian-elimination outputs, whose
/// magnitudes vary with the system: tolerance scales with the largest
/// element of either operand.
#[must_use]
pub fn approx_eq_rel(a: &Matrix<f64>, b: &Matrix<f64>, rel_tol: f64) -> bool {
    let scale = a
        .as_slice()
        .iter()
        .chain(b.as_slice())
        .map(|&x| x.abs())
        .fold(1.0, f64::max);
    max_abs_diff(a, b) <= rel_tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1i64, 2], vec![3, 4]]);
        let b = Matrix::from_rows(&[vec![5i64, 6], vec![7, 8]]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[vec![19i64, 22], vec![43, 50]]));
    }

    #[test]
    fn naive_matmul_rectangular() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as i64);
        let b = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as i64);
        let c = matmul_naive(&a, &b);
        assert_eq!((c.rows(), c.cols()), (2, 4));
        // c[1][2] = sum_l a[1][l]*b[l][2] = 1*2 + 2*6 + 3*10 = 44
        assert_eq!(c[(1, 2)], 44);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_fn(5, 5, |i, j| (3 * i + 7 * j) as i64);
        let id = Matrix::<i64>::identity(5);
        assert_eq!(matmul_naive(&a, &id), a);
        assert_eq!(matmul_naive(&id, &a), a);
    }

    #[test]
    fn cost_formula() {
        assert_eq!(matmul_naive_cost(4, 5, 6), 120);
    }

    #[test]
    fn diff_helpers() {
        let a = Matrix::from_rows(&[vec![1.0f64, 2.0]]);
        let b = Matrix::from_rows(&[vec![1.0f64, 2.5]]);
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(approx_eq(&a, &b, 0.5));
        assert!(!approx_eq(&a, &b, 0.4));
        assert!(approx_eq_rel(&a, &b, 0.21));
    }
}
