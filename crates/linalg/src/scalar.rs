//! Scalar (ring) abstraction used by every matrix kernel in the workspace.
//!
//! The (m, ℓ)-TCU model multiplies matrices over an arbitrary ring: the
//! paper uses reals for dense/sparse multiplication, non-negative integers
//! for transitive closure and Seidel's APSD, complex numbers for the DFT,
//! bounded integers for long-integer multiplication, and "semiring
//! operations" for the lower-bound arguments. [`Scalar`] captures the ring
//! operations every kernel needs; [`Field`] adds division for Gaussian
//! elimination and polynomial work over `f64` and [`crate::Fp61`].

use std::fmt::Debug;

/// A commutative ring element: the value type matrices are defined over.
///
/// All TCU tensor-unit multiplications and host baselines are generic over
/// this trait. Implementations must be `Copy` and cheap: the simulator's
/// numeric work is `Θ(n^{3/2})` scalar multiply-adds per dense product.
pub trait Scalar: Copy + PartialEq + Debug + Send + Sync + 'static {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Ring addition.
    #[must_use]
    fn add(self, rhs: Self) -> Self;

    /// Ring subtraction (every ring we use has additive inverses; the one
    /// boolean-flavoured algorithm in the paper — transitive closure — is
    /// implemented over integers with clamping exactly as the paper's
    /// function `D` prescribes, so no sub-free semiring type is needed).
    #[must_use]
    fn sub(self, rhs: Self) -> Self;

    /// Ring multiplication.
    #[must_use]
    fn mul(self, rhs: Self) -> Self;

    /// Additive inverse.
    #[must_use]
    #[inline]
    fn neg(self) -> Self {
        Self::ZERO.sub(self)
    }

    /// Fused multiply-add `self + a * b`; the inner-loop operation of every
    /// matrix product. Override when a fused form is cheaper.
    #[must_use]
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }
}

/// A [`Scalar`] with exact or approximate division: needed by Gaussian
/// elimination (pivot division) and by twiddle/normalization steps.
pub trait Field: Scalar {
    /// Division; callers guarantee `rhs` is invertible (non-zero).
    #[must_use]
    fn div(self, rhs: Self) -> Self;
}

macro_rules! impl_scalar_prim {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0 as $t;
            const ONE: Self = 1 as $t;
            #[inline]
            fn add(self, rhs: Self) -> Self { self + rhs }
            #[inline]
            fn sub(self, rhs: Self) -> Self { self - rhs }
            #[inline]
            fn mul(self, rhs: Self) -> Self { self * rhs }
        }
    )*};
}

impl_scalar_prim!(i32, i64, i128);

// Floats: when the target has hardware FMA, fuse the multiply-add the
// matrix kernels are built from (one rounding, and the instruction the
// micro-kernel's throughput lives on). Without the target feature, fall
// back to the separate multiply + add — `f64::mul_add` would otherwise
// lower to a libm call that is an order of magnitude slower than the
// unfused pair. Every matmul path (naive oracle and tiled kernels) goes
// through this same method, so they agree exactly either way.
macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            #[inline]
            fn add(self, rhs: Self) -> Self { self + rhs }
            #[inline]
            fn sub(self, rhs: Self) -> Self { self - rhs }
            #[inline]
            fn mul(self, rhs: Self) -> Self { self * rhs }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                #[cfg(target_feature = "fma")]
                { a.mul_add(b, self) }
                #[cfg(not(target_feature = "fma"))]
                { self + a * b }
            }
        }
    )*};
}

impl_scalar_float!(f32, f64);

// Unsigned integers: subtraction is wrapping so that `neg` is the proper
// two's-complement additive inverse (the ring Z/2^k). Long-integer
// multiplication (Theorem 9) relies on additions/multiplications of values
// far below 2^64, and never on subtraction, but Strassen-style kernels may
// form temporary differences that cancel; wrapping keeps them exact.
macro_rules! impl_scalar_uint {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            #[inline]
            fn add(self, rhs: Self) -> Self { self.wrapping_add(rhs) }
            #[inline]
            fn sub(self, rhs: Self) -> Self { self.wrapping_sub(rhs) }
            #[inline]
            fn mul(self, rhs: Self) -> Self { self.wrapping_mul(rhs) }
        }
    )*};
}

impl_scalar_uint!(u32, u64, u128);

impl Field for f64 {
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }
}

impl Field for f32 {
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self / rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_ring_ops() {
        assert_eq!(<f64 as Scalar>::ZERO, 0.0);
        assert_eq!(<f64 as Scalar>::ONE, 1.0);
        assert_eq!(2.0.add(3.0), 5.0);
        assert_eq!(2.0.sub(3.0), -1.0);
        assert_eq!(2.0.mul(3.0), 6.0);
        assert_eq!(Scalar::neg(2.0), -2.0);
        assert_eq!(1.0.mul_add(2.0, 3.0), 7.0);
    }

    #[test]
    fn i64_ring_ops() {
        assert_eq!(7i64.mul_add(2, -3), 1);
        assert_eq!(Scalar::neg(5i64), -5);
    }

    #[test]
    fn u64_wrapping_neg_is_additive_inverse() {
        let x: u64 = 12345;
        assert_eq!(Scalar::add(Scalar::neg(x), x), 0);
    }

    #[test]
    fn field_division() {
        assert_eq!(Field::div(6.0f64, 3.0), 2.0);
        assert_eq!(Field::div(6.0f32, 4.0), 1.5);
    }
}
