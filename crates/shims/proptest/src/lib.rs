//! Hermetic stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's surface the workspace's property
//! tests use: the [`Strategy`] trait (with `prop_map`), [`any`], range and
//! tuple strategies, [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Semantics are simplified deliberately: each test runs
//! `ProptestConfig::cases` deterministic cases (seeded per case index),
//! and failures panic immediately — there is no shrinking. That trades
//! diagnostic convenience for zero dependencies; failing seeds are
//! reported in the panic message so a case can be replayed by hand.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

#[doc(hidden)]
pub use rand as __rand;

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )+};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl<T: Clone> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Clone> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

pub mod collection {
    //! Collection strategies (only `vec` is provided).

    use super::{StdRng, Strategy};

    /// Strategy for `Vec<S::Value>` of exactly `len` elements.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-case generator: the stream depends only on the test
/// name and case index, so failures reproduce across runs and machines
/// while distinct properties still draw distinct input streams.
#[doc(hidden)]
#[must_use]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 17))
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instances of `body`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $( #[test] fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
    (
        $( #[test] fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( #[test] fn $name( $($pat in $strat),+ ) $body )*
        }
    };
}

/// `assert!` under a name the proptest dialect expects.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest dialect expects.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest dialect expects.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_sample_in_bounds() {
        let mut rng = super::case_rng("ranges_and_maps", 0);
        let s = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_has_exact_length() {
        let mut rng = super::case_rng("vec_strategy", 1);
        let s = super::collection::vec(any::<u64>(), 9);
        assert_eq!(s.sample(&mut rng).len(), 9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_binds_tuples_and_scalars((a, b) in (0u64..100, 0u64..100), c in any::<u64>()) {
            prop_assert!(a < 100 && b < 100);
            prop_assert_eq!(c / 2, c >> 1);
        }
    }
}
