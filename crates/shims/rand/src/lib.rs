//! Hermetic stand-in for the `rand` crate.
//!
//! The workspace builds with no registry access, so this local crate
//! provides the (small) subset of rand 0.8's API the reproduction uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! adequate for test workload generation (it is the generator used to
//! seed xoshiro in the reference implementations). It is **not** a
//! cryptographic RNG and makes no stream-compatibility promise with the
//! real `rand::rngs::StdRng`; everything in this workspace treats seeds
//! as opaque reproducibility handles, never as cross-crate fixtures.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng: RngCore` extension trait).
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their whole domain (the shim's
/// analogue of sampling rand's `Standard` distribution via `Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+ $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges a uniform value can be drawn from (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from `self` using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )+};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // FP rounding can land exactly on `end`; keep the range half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from an empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators (the shim provides only [`StdRng`]).

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
            let y = rng.gen_range(0usize..17);
            assert!(y < 17);
            let z = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&z));
            let w = rng.gen_range(1u16..=u16::MAX);
            assert!(w >= 1);
        }
    }

    #[test]
    fn unit_f64_covers_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo_seen |= u < 0.1;
            hi_seen |= u > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples should spread across [0, 1)");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p = 0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
