//! Hermetic stand-in for the `criterion` crate.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! benchmark groups, [`BenchmarkId`], `Bencher::iter`, and the
//! [`criterion_group!`] / [`criterion_main!`] macros — backed by a plain
//! `Instant`-based timer. No statistics beyond min/mean/max are computed;
//! the point is that `cargo bench` compiles, runs, and prints comparable
//! wall-clock numbers without any registry dependency.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (a bag of timing knobs).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Soft cap on total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Untimed warm-up duration per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { criterion: self }
    }
}

/// A named collection of benchmarks sharing the driver's settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark: `f` receives a [`Bencher`] and `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&id.repr);
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier printed next to a benchmark's timings.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Id with an explicit function name and parameter.
    pub fn new(name: impl core::fmt::Display, parameter: impl core::fmt::Display) -> Self {
        Self {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Id from the swept parameter alone.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`: warm up untimed, then record up to `sample_size` samples
    /// (stopping early once the measurement-time budget is spent).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        self.samples.clear();
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("  {id:<24} (no samples recorded)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / u32::try_from(self.samples.len()).unwrap_or(u32::MAX);
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {id:<24} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   ({} samples)",
            self.samples.len()
        );
    }
}

/// Bundle benchmark functions into a group runner (criterion's macro shape).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $cfg:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut group = c.benchmark_group("shim-self-test");
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(ran >= 5, "closure should run during warm-up and sampling");
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("karatsuba", 256).repr, "karatsuba/256");
        assert_eq!(BenchmarkId::from_parameter(64).repr, "64");
    }
}
