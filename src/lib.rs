//! # tcu — facade for the (m, ℓ)-TCU model reproduction
//!
//! A full software reproduction of Chowdhury, Silvestri & Vella, *A
//! Computational Model for Tensor Core Units* (SPAA 2020): the simulated
//! machine model, the cycle-level systolic-array substrate, every §4
//! algorithm with its RAM baseline, and the §5 external-memory bridge.
//!
//! This crate re-exports the workspace members under stable paths and is
//! what the `examples/` binaries and the integration tests build
//! against. Start with:
//!
//! ```
//! use tcu::core::TcuMachine;
//! use tcu::linalg::Matrix;
//!
//! // A machine with a 16×16-capable tensor unit (m = 256) and latency 100.
//! let mut mach = TcuMachine::model(256, 100);
//! let a = Matrix::from_fn(64, 64, |i, j| (i + j) as f64);
//! let b = Matrix::<f64>::identity(64);
//! let c = tcu::algos::dense::multiply(&mut mach, &a, &b);
//! assert_eq!(c, a);
//! // Simulated time follows Theorem 2 exactly.
//! assert_eq!(mach.time(), tcu::algos::dense::multiply_time(64, 16, 100));
//! ```

pub use tcu_algos as algos;
pub use tcu_core as core;
pub use tcu_extmem as extmem;
pub use tcu_linalg as linalg;
pub use tcu_sched as sched;
pub use tcu_systolic as systolic;

/// The most commonly used items, for `use tcu::prelude::*`.
pub mod prelude {
    pub use tcu_core::{
        Executor, HostExecutor, ModelMachine, OperandId, PadPolicy, ParallelTcuMachine,
        ReplayExecutor, Stats, StatsSummary, TcuMachine, TensorOp, TensorUnit, WeakMachine,
    };
    pub use tcu_linalg::{Complex64, Field, Fp61, Half, Matrix, Scalar};
    pub use tcu_sched::{ExecEnv, OpGraph, OperandRef, Schedule, Scheduler};
    pub use tcu_systolic::{SystolicArray, SystolicExecutor, SystolicTensorUnit};
}
