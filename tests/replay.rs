//! Property tests for the `TensorOp` IR seam:
//!
//! * **Replay closure** — replaying any recorded trace through the unit
//!   that recorded it reproduces `Stats`, the digest, and the full
//!   event stream (descriptors and costs included) exactly, for random
//!   op programs and for real algorithm workloads, on both the model
//!   and weak machines.
//! * **Backend agreement** — `HostExecutor` and `SystolicExecutor`
//!   produce element-for-element identical products (and identical
//!   accounting) for random weak-model shapes, over integers and
//!   floats: both backends fuse the same multiply-add in the same
//!   ascending-`k` order.

use proptest::prelude::*;
use tcu::algos::{closure, dense, strassen};
use tcu::core::{ModelTensorUnit, WeakTensorUnit};
use tcu::linalg::ops::matmul_naive;
use tcu::prelude::*;

/// Issue a deterministic pseudo-random op program (strict tall calls,
/// padded calls, fused accumulations, interleaved scalar work) on `mach`.
fn run_program<U: TensorUnit, E: Executor>(mach: &mut TcuMachine<U, E>, seed: u64, len: usize) {
    let s = mach.sqrt_m();
    let mut state = seed | 1;
    let mut next = |bound: usize| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (state >> 33) as usize % bound
    };
    for _ in 0..len {
        match next(4) {
            0 => {
                let n = s + next(3 * s);
                let a = Matrix::from_fn(n, s, |i, j| (i + 2 * j) as i64 % 7 - 3);
                let b = Matrix::from_fn(s, s, |i, j| (2 * i + j) as i64 % 5 - 2);
                let _ = mach.tensor_mul(&a, &b);
            }
            1 => {
                let r = 1 + next(2 * s);
                let k = 1 + next(s);
                let w = 1 + next(s);
                let a = Matrix::from_fn(r, k, |i, j| (i * 3 + j) as i64 % 9 - 4);
                let b = Matrix::from_fn(k, w, |i, j| (i + j * 5) as i64 % 9 - 4);
                let _ = mach.tensor_mul_padded(&a, &b);
            }
            2 => {
                let n = s + next(2 * s);
                let a = Matrix::from_fn(n, s, |i, j| (i ^ j) as i64 % 6 - 3);
                let b = Matrix::from_fn(s, s, |i, j| (i * j) as i64 % 6 - 3);
                let mut out = Matrix::<i64>::zeros(n, s);
                mach.tensor_mul_acc_view(a.view(), b.view(), &mut out.view_mut());
            }
            _ => mach.charge(1 + next(50) as u64),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replaying_a_random_program_reproduces_accounting(seed in any::<u64>(), len in 1usize..40) {
        for weak in [false, true] {
            let (stats, trace, unit_m, lat) = if weak {
                let mut mach = TcuMachine::weak(16, 33);
                mach.enable_trace();
                run_program(&mut mach, seed, len);
                (mach.stats().clone(), mach.take_trace(), 16, 33)
            } else {
                let mut mach = TcuMachine::model(16, 33);
                mach.enable_trace();
                run_program(&mut mach, seed, len);
                (mach.stats().clone(), mach.take_trace(), 16, 33)
            };

            // Machine-level replay: accounting only, no numerics.
            if weak {
                let mut re = TcuMachine::with_executor(
                    WeakTensorUnit::new(unit_m, lat), ReplayExecutor::default());
                re.enable_trace();
                re.replay(&trace);
                prop_assert_eq!(re.stats(), &stats);
                let replayed = re.take_trace();
                prop_assert_eq!(replayed.digest(), trace.digest());
                prop_assert_eq!(replayed.events(), trace.events());
            } else {
                let mut re = TcuMachine::with_executor(
                    ModelTensorUnit::new(unit_m, lat), ReplayExecutor::default());
                re.enable_trace();
                re.replay(&trace);
                prop_assert_eq!(re.stats(), &stats);
                let replayed = re.take_trace();
                prop_assert_eq!(replayed.digest(), trace.digest());
                prop_assert_eq!(replayed.events(), trace.events());
            }
        }
    }

    #[test]
    fn replaying_real_workload_traces_reproduces_accounting(seed in any::<u64>()) {
        let d = 32usize;
        let a = Matrix::from_fn(d, d, |i, j| ((i * 7 + j * 3) as i64 + seed as i64 % 11) % 13 - 6);
        let b = Matrix::from_fn(d, d, |i, j| ((i + 5 * j) as i64 + seed as i64 % 7) % 13 - 6);

        // Dense Theorem 2 on the model machine; Strassen exercises the
        // padded path; closure exercises fused accumulation patterns.
        let mut mach = TcuMachine::model(16, 21);
        mach.enable_trace();
        let _ = dense::multiply(&mut mach, &a, &b);
        let _ = strassen::multiply_strassen(&mut mach, &a, &b);
        let mut adj = Matrix::from_fn(d, d, |i, j| {
            i64::from((i * 5 + j * 11 + seed as usize).is_multiple_of(4))
        });
        closure::transitive_closure(&mut mach, &mut adj);
        let trace = mach.take_trace();

        let exec = ReplayExecutor::new(trace.clone());
        let (stats, replayed) = exec.run(mach.unit());
        prop_assert_eq!(&stats, mach.stats());
        prop_assert_eq!(replayed.digest(), trace.digest());
        prop_assert_eq!(replayed.events(), trace.events());
    }

    #[test]
    fn host_and_systolic_executors_agree_elementwise_i64(
        seed in any::<u64>(), n_tiles in 1usize..5,
    ) {
        let s = 4usize;
        let n = n_tiles * s;
        let a = Matrix::from_fn(n, s, |i, j| {
            ((i as u64 * 31 + j as u64 * 17).wrapping_add(seed) % 41) as i64 - 20
        });
        let b = Matrix::from_fn(s, s, |i, j| {
            ((i as u64 * 13 + j as u64 * 7).wrapping_add(seed >> 8) % 41) as i64 - 20
        });

        let mut host = TcuMachine::with_executor(WeakTensorUnit::new(16, 5), HostExecutor::new());
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 5), SystolicExecutor::new());
        host.enable_trace();
        sys.enable_trace();
        let ch = host.tensor_mul(&a, &b);
        let cs = sys.tensor_mul(&a, &b);
        prop_assert_eq!(&ch, &cs);
        prop_assert_eq!(ch, matmul_naive(&a, &b));
        prop_assert_eq!(host.stats(), sys.stats());
        prop_assert_eq!(host.take_trace(), sys.take_trace());
    }

    #[test]
    fn host_and_systolic_executors_agree_elementwise_f64(seed in any::<u64>()) {
        let s = 4usize;
        let a = Matrix::from_fn(3 * s, s, |i, j| {
            ((i as u64 * 29 + j as u64 * 23).wrapping_add(seed) % 97) as f64 / 16.0 - 3.0
        });
        let b = Matrix::from_fn(s, s, |i, j| {
            ((i as u64 * 19 + j as u64 * 11).wrapping_add(seed >> 5) % 97) as f64 / 32.0 - 1.5
        });
        let mut host = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), HostExecutor::new());
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 0), SystolicExecutor::new());
        // IEEE `==`, not tolerance: both backends fuse identically.
        prop_assert_eq!(host.tensor_mul(&a, &b), sys.tensor_mul(&a, &b));
    }

    #[test]
    fn padded_ops_agree_across_executors(seed in any::<u64>()) {
        let s = 4usize;
        let rows = 1 + (seed % 7) as usize;
        let k = 1 + (seed >> 3) as usize % s;
        let w = 1 + (seed >> 6) as usize % s;
        let a = Matrix::from_fn(rows, k, |i, j| ((i * 3 + j * 5) as i64 + (seed % 9) as i64) % 11 - 5);
        let b = Matrix::from_fn(k, w, |i, j| ((i * 7 + j) as i64 + (seed % 5) as i64) % 11 - 5);
        let mut host = TcuMachine::with_executor(WeakTensorUnit::new(16, 3), HostExecutor::new());
        let mut sys = TcuMachine::with_executor(WeakTensorUnit::new(16, 3), SystolicExecutor::new());
        let ch = host.tensor_mul_padded(&a, &b);
        let cs = sys.tensor_mul_padded(&a, &b);
        prop_assert_eq!(&ch, &cs);
        prop_assert_eq!(ch, matmul_naive(&a, &b));
        prop_assert_eq!(host.stats(), sys.stats());
    }
}
