//! Property-based tests (proptest) of the core invariants: ring axioms
//! on the simulated tensor unit, oracle agreement under random inputs,
//! transform inverses, cost-model monotonicity, and exact agreement of
//! the tiled/parallel host kernels with the naive oracle.

use proptest::prelude::*;
use tcu::algos::{apsd, closure, dense, fft, intmul, poly, workloads};
use tcu::linalg::ops::matmul_naive;
use tcu::linalg::{kernels, MatrixView};
use tcu::prelude::*;

/// Random small Fp61 matrix strategy.
fn fp_matrix(d: usize) -> impl Strategy<Value = Matrix<Fp61>> {
    proptest::collection::vec(any::<u64>(), d * d)
        .prop_map(move |v| Matrix::from_vec(d, d, v.into_iter().map(Fp61::new).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_multiplication_is_associative((a, b, c) in (fp_matrix(8), fp_matrix(8), fp_matrix(8))) {
        let mut mach = TcuMachine::model(16, 5);
        let ab = dense::multiply(&mut mach, &a, &b);
        let ab_c = dense::multiply(&mut mach, &ab, &c);
        let bc = dense::multiply(&mut mach, &b, &c);
        let a_bc = dense::multiply(&mut mach, &a, &bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn tensor_multiplication_distributes((a, b, c) in (fp_matrix(8), fp_matrix(8), fp_matrix(8))) {
        let mut mach = TcuMachine::model(16, 5);
        let left = dense::multiply(&mut mach, &a, &b.add(&c));
        let right = dense::multiply(&mut mach, &a, &b).add(&dense::multiply(&mut mach, &a, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn machine_product_equals_naive(seed in any::<u64>(), d in 1usize..20) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(d, d, 100, &mut rng);
        let b = workloads::random_matrix_i64(d, d, 100, &mut rng);
        let mut mach = TcuMachine::model(16, 9);
        prop_assert_eq!(dense::multiply_rect(&mut mach, &a, &b), matmul_naive(&a, &b));
    }

    #[test]
    fn closure_is_idempotent_and_monotone(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let adj = workloads::random_digraph(16, 0.2, &mut rng);
        let mut mach = TcuMachine::model(16, 0);
        let mut once = adj.clone();
        closure::transitive_closure(&mut mach, &mut once);
        // Monotone: every original edge survives.
        for i in 0..16 {
            for j in 0..16 {
                prop_assert!(once[(i, j)] >= adj[(i, j)]);
            }
        }
        // Idempotent.
        let mut twice = once.clone();
        closure::transitive_closure(&mut mach, &mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn seidel_matches_bfs(seed in any::<u64>(), n in 2usize..24) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let adj = workloads::random_connected_graph(n, 0.15, &mut rng);
        let mut mach = TcuMachine::model(16, 1);
        prop_assert_eq!(apsd::seidel_apsd(&mut mach, &adj), apsd::bfs_apsd_host(&adj));
    }

    #[test]
    fn dft_roundtrip_and_linearity(seed in any::<u64>(), logn in 1u32..8) {
        let n = 1usize << logn;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = workloads::random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(16, 2);
        let fwd = fft::dft(&mut mach, &x);
        let back = fft::idft(&mut mach, &fwd);
        for (orig, got) in x.iter().zip(&back) {
            prop_assert!(orig.sub(*got).abs() < 1e-9);
        }
    }

    #[test]
    fn bignat_multiplication_matches_host(seed in any::<u64>(), la in 1usize..40, lb in 1usize..40) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(la, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(lb, &mut rng));
        let want = intmul::mul_host(&a, &b);
        let mut mach = TcuMachine::model(16, 3);
        prop_assert_eq!(intmul::mul_tcu_schoolbook(&mut mach, &a, &b), want.clone());
        prop_assert_eq!(intmul::mul_tcu_karatsuba(&mut mach, &a, &b), want);
    }

    #[test]
    fn bignat_mul_is_commutative(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(12, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(7, &mut rng));
        let mut mach = TcuMachine::model(16, 0);
        prop_assert_eq!(
            intmul::mul_tcu_schoolbook(&mut mach, &a, &b),
            intmul::mul_tcu_schoolbook(&mut mach, &b, &a)
        );
    }

    #[test]
    fn poly_eval_matches_horner(seed in any::<u64>(), n in 1usize..80, p in 1usize..12) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let coeffs: Vec<Fp61> = (0..n).map(|_| Fp61::new(rand::Rng::gen(&mut rng))).collect();
        let points: Vec<Fp61> = (0..p).map(|_| Fp61::new(rand::Rng::gen(&mut rng))).collect();
        let mut mach = TcuMachine::model(16, 4);
        prop_assert_eq!(poly::batch_eval(&mut mach, &coeffs, &points), poly::horner_host(&coeffs, &points));
    }

    #[test]
    fn time_is_monotone_in_latency(seed in any::<u64>(), l1 in 0u64..1000, dl in 1u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(16, 16, 10, &mut rng);
        let b = workloads::random_matrix_i64(16, 16, 10, &mut rng);
        let mut lo = TcuMachine::model(16, l1);
        let _ = dense::multiply(&mut lo, &a, &b);
        let mut hi = TcuMachine::model(16, l1 + dl);
        let _ = dense::multiply(&mut hi, &a, &b);
        prop_assert!(hi.time() > lo.time());
        // And the difference is exactly calls × dl.
        prop_assert_eq!(hi.time() - lo.time(), lo.stats().tensor_calls * dl);
    }

    #[test]
    fn weak_machine_never_beats_strong(seed in any::<u64>(), l in 0u64..500) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(32, 32, 10, &mut rng);
        let b = workloads::random_matrix_i64(32, 32, 10, &mut rng);
        let mut strong = TcuMachine::model(16, l);
        let cs = dense::multiply(&mut strong, &a, &b);
        let mut weak = TcuMachine::weak(16, l);
        let cw = dense::multiply(&mut weak, &a, &b);
        prop_assert_eq!(cs, cw);
        prop_assert!(weak.time() >= strong.time());
    }

    #[test]
    fn tiled_kernel_equals_naive_i64(seed in any::<u64>(), n in 1usize..40, k in 1usize..24, p in 1usize..24) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(n, k, 50, &mut rng);
        let b = workloads::random_matrix_i64(k, p, 50, &mut rng);
        let want = matmul_naive(&a, &b);
        prop_assert_eq!(kernels::matmul(a.view(), b.view()), want.clone());
        // Strided operand views (blocks of larger matrices) agree too.
        let wide_a = workloads::random_matrix_i64(n + 3, k + 5, 50, &mut rng);
        let wide_b = workloads::random_matrix_i64(k + 2, p + 4, 50, &mut rng);
        let av = wide_a.subview(1, 2, n, k);
        let bv = wide_b.subview(2, 3, k, p);
        prop_assert_eq!(
            kernels::matmul(av, bv),
            matmul_naive(&av.to_matrix(), &bv.to_matrix())
        );
    }

    #[test]
    fn parallel_kernel_bit_identical_for_every_thread_count(seed in any::<u64>(), n in 1usize..520, threads in 1usize..9) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let s = 16;
        let a = workloads::random_matrix_i64(n, s, 100, &mut rng);
        let b = workloads::random_matrix_i64(s, s, 100, &mut rng);
        let serial = kernels::matmul(a.view(), b.view());
        prop_assert_eq!(serial.clone(), matmul_naive(&a, &b));
        prop_assert_eq!(kernels::matmul_threads(a.view(), b.view(), threads), serial);
    }

    #[test]
    fn tiled_kernel_equals_naive_f64(seed in any::<u64>(), n in 1usize..32, k in 1usize..20) {
        // Floats: the tiled kernel and the oracle share the same
        // per-element mul_add order, so they agree under IEEE ==.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = Matrix::from_fn(n, k, |_, _| rand::Rng::gen_range(&mut rng, -4.0f64..4.0));
        let b = Matrix::from_fn(k, k, |_, _| rand::Rng::gen_range(&mut rng, -4.0f64..4.0));
        let want = matmul_naive(&a, &b);
        prop_assert_eq!(kernels::matmul(a.view(), b.view()), want.clone());
        prop_assert_eq!(kernels::matmul_threads(a.view(), b.view(), 4), want);
    }

    #[test]
    fn tiled_kernel_equals_naive_fp61(seed in any::<u64>(), n in 1usize..24, k in 1usize..18, p in 1usize..18) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = Matrix::from_fn(n, k, |_, _| Fp61::new(rand::Rng::gen(&mut rng)));
        let b = Matrix::from_fn(k, p, |_, _| Fp61::new(rand::Rng::gen(&mut rng)));
        prop_assert_eq!(kernels::matmul(a.view(), b.view()), matmul_naive(&a, &b));
    }

    #[test]
    fn fused_accumulate_equals_unfused(seed in any::<u64>(), n in 1usize..400, threads in 1usize..5) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let s = 8;
        let a = workloads::random_matrix_i64(n, s, 30, &mut rng);
        let b = workloads::random_matrix_i64(s, s, 30, &mut rng);
        let c0 = workloads::random_matrix_i64(n, s, 30, &mut rng);
        let mut want = c0.clone();
        want.add_assign(&matmul_naive(&a, &b));
        let mut got = c0;
        kernels::matmul_acc_threads(&mut got.view_mut(), a.view(), b.view(), threads);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn machine_view_calls_equal_owned_calls(seed in any::<u64>(), n in 4usize..32) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let s = 4;
        let wide = workloads::random_matrix_i64(n + 2, 3 * s, 40, &mut rng);
        let wts = workloads::random_matrix_i64(2 * s, 2 * s, 40, &mut rng);
        let a = wide.block(1, s, n, s);
        let b = wts.block(s, 0, s, s);

        let mut owned = TcuMachine::model(16, 7);
        owned.enable_trace();
        let co = owned.tensor_mul(&a, &b);
        let mut viewed = TcuMachine::model(16, 7);
        viewed.set_host_threads(3);
        viewed.enable_trace();
        let cv = viewed.tensor_mul_view(wide.subview(1, s, n, s), wts.subview(s, 0, s, s));
        prop_assert_eq!(co, cv);
        prop_assert_eq!(owned.stats(), viewed.stats());
        prop_assert_eq!(owned.take_trace(), viewed.take_trace());
    }

    #[test]
    fn batch_views_match_owned_batch(seed in any::<u64>(), q in 1usize..5) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let s = 4;
        let d = q * s;
        let a = workloads::random_matrix_i64(d, d, 20, &mut rng);
        let b = workloads::random_matrix_i64(d, d, 20, &mut rng);
        let ops: Vec<(MatrixView<'_, i64>, MatrixView<'_, i64>)> = (0..q * q)
            .map(|kj| (a.col_strip_view((kj / q) * s, s), b.subview((kj / q) * s, (kj % q) * s, s, s)))
            .collect();
        let mut par = ParallelTcuMachine::new(tcu::core::ModelTensorUnit::new(16, 5), 2);
        let prods = par.tensor_mul_batch_views(&ops);
        for (kj, prod) in prods.iter().enumerate() {
            let strip = a.col_strip((kj / q) * s, s);
            let blk = b.block((kj / q) * s, (kj % q) * s, s, s);
            prop_assert_eq!(prod.clone(), matmul_naive(&strip, &blk));
        }
    }

    #[test]
    fn systolic_array_equals_naive(seed in any::<u64>(), s in 1usize..10, mult in 1usize..5) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(s * mult, s, 20, &mut rng);
        let b = workloads::random_matrix_i64(s, s, 20, &mut rng);
        let mut arr = SystolicArray::new(s);
        let (c, rep) = arr.multiply(&a, &b);
        prop_assert_eq!(c, matmul_naive(&a, &b));
        prop_assert_eq!(rep.stream_steps, tcu::systolic::stream_cycles(s * mult, s));
    }
}
