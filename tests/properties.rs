//! Property-based tests (proptest) of the core invariants: ring axioms
//! on the simulated tensor unit, oracle agreement under random inputs,
//! transform inverses, and cost-model monotonicity.

use proptest::prelude::*;
use tcu::algos::{apsd, closure, dense, fft, intmul, poly, workloads};
use tcu::linalg::ops::matmul_naive;
use tcu::prelude::*;

/// Random small Fp61 matrix strategy.
fn fp_matrix(d: usize) -> impl Strategy<Value = Matrix<Fp61>> {
    proptest::collection::vec(any::<u64>(), d * d)
        .prop_map(move |v| Matrix::from_vec(d, d, v.into_iter().map(Fp61::new).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tensor_multiplication_is_associative((a, b, c) in (fp_matrix(8), fp_matrix(8), fp_matrix(8))) {
        let mut mach = TcuMachine::model(16, 5);
        let ab = dense::multiply(&mut mach, &a, &b);
        let ab_c = dense::multiply(&mut mach, &ab, &c);
        let bc = dense::multiply(&mut mach, &b, &c);
        let a_bc = dense::multiply(&mut mach, &a, &bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn tensor_multiplication_distributes((a, b, c) in (fp_matrix(8), fp_matrix(8), fp_matrix(8))) {
        let mut mach = TcuMachine::model(16, 5);
        let left = dense::multiply(&mut mach, &a, &b.add(&c));
        let right = dense::multiply(&mut mach, &a, &b).add(&dense::multiply(&mut mach, &a, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn machine_product_equals_naive(seed in any::<u64>(), d in 1usize..20) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(d, d, 100, &mut rng);
        let b = workloads::random_matrix_i64(d, d, 100, &mut rng);
        let mut mach = TcuMachine::model(16, 9);
        prop_assert_eq!(dense::multiply_rect(&mut mach, &a, &b), matmul_naive(&a, &b));
    }

    #[test]
    fn closure_is_idempotent_and_monotone(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let adj = workloads::random_digraph(16, 0.2, &mut rng);
        let mut mach = TcuMachine::model(16, 0);
        let mut once = adj.clone();
        closure::transitive_closure(&mut mach, &mut once);
        // Monotone: every original edge survives.
        for i in 0..16 {
            for j in 0..16 {
                prop_assert!(once[(i, j)] >= adj[(i, j)]);
            }
        }
        // Idempotent.
        let mut twice = once.clone();
        closure::transitive_closure(&mut mach, &mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn seidel_matches_bfs(seed in any::<u64>(), n in 2usize..24) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let adj = workloads::random_connected_graph(n, 0.15, &mut rng);
        let mut mach = TcuMachine::model(16, 1);
        prop_assert_eq!(apsd::seidel_apsd(&mut mach, &adj), apsd::bfs_apsd_host(&adj));
    }

    #[test]
    fn dft_roundtrip_and_linearity(seed in any::<u64>(), logn in 1u32..8) {
        let n = 1usize << logn;
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let x = workloads::random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(16, 2);
        let fwd = fft::dft(&mut mach, &x);
        let back = fft::idft(&mut mach, &fwd);
        for (orig, got) in x.iter().zip(&back) {
            prop_assert!(orig.sub(*got).abs() < 1e-9);
        }
    }

    #[test]
    fn bignat_multiplication_matches_host(seed in any::<u64>(), la in 1usize..40, lb in 1usize..40) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(la, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(lb, &mut rng));
        let want = intmul::mul_host(&a, &b);
        let mut mach = TcuMachine::model(16, 3);
        prop_assert_eq!(intmul::mul_tcu_schoolbook(&mut mach, &a, &b), want.clone());
        prop_assert_eq!(intmul::mul_tcu_karatsuba(&mut mach, &a, &b), want);
    }

    #[test]
    fn bignat_mul_is_commutative(seed in any::<u64>()) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(12, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(7, &mut rng));
        let mut mach = TcuMachine::model(16, 0);
        prop_assert_eq!(
            intmul::mul_tcu_schoolbook(&mut mach, &a, &b),
            intmul::mul_tcu_schoolbook(&mut mach, &b, &a)
        );
    }

    #[test]
    fn poly_eval_matches_horner(seed in any::<u64>(), n in 1usize..80, p in 1usize..12) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let coeffs: Vec<Fp61> = (0..n).map(|_| Fp61::new(rand::Rng::gen(&mut rng))).collect();
        let points: Vec<Fp61> = (0..p).map(|_| Fp61::new(rand::Rng::gen(&mut rng))).collect();
        let mut mach = TcuMachine::model(16, 4);
        prop_assert_eq!(poly::batch_eval(&mut mach, &coeffs, &points), poly::horner_host(&coeffs, &points));
    }

    #[test]
    fn time_is_monotone_in_latency(seed in any::<u64>(), l1 in 0u64..1000, dl in 1u64..1000) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(16, 16, 10, &mut rng);
        let b = workloads::random_matrix_i64(16, 16, 10, &mut rng);
        let mut lo = TcuMachine::model(16, l1);
        let _ = dense::multiply(&mut lo, &a, &b);
        let mut hi = TcuMachine::model(16, l1 + dl);
        let _ = dense::multiply(&mut hi, &a, &b);
        prop_assert!(hi.time() > lo.time());
        // And the difference is exactly calls × dl.
        prop_assert_eq!(hi.time() - lo.time(), lo.stats().tensor_calls * dl);
    }

    #[test]
    fn weak_machine_never_beats_strong(seed in any::<u64>(), l in 0u64..500) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(32, 32, 10, &mut rng);
        let b = workloads::random_matrix_i64(32, 32, 10, &mut rng);
        let mut strong = TcuMachine::model(16, l);
        let cs = dense::multiply(&mut strong, &a, &b);
        let mut weak = TcuMachine::weak(16, l);
        let cw = dense::multiply(&mut weak, &a, &b);
        prop_assert_eq!(cs, cw);
        prop_assert!(weak.time() >= strong.time());
    }

    #[test]
    fn systolic_array_equals_naive(seed in any::<u64>(), s in 1usize..10, mult in 1usize..5) {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let a = workloads::random_matrix_i64(s * mult, s, 20, &mut rng);
        let b = workloads::random_matrix_i64(s, s, 20, &mut rng);
        let mut arr = SystolicArray::new(s);
        let (c, rep) = arr.multiply(&a, &b);
        prop_assert_eq!(c, matmul_naive(&a, &b));
        prop_assert_eq!(rep.stream_steps, tcu::systolic::stream_cycles(s * mult, s));
    }
}
