//! Cross-crate integration tests: full pipelines spanning the machine
//! model, the algorithm suite, the systolic substrate, and the
//! external-memory bridge.

use rand::{rngs::StdRng, SeedableRng};
use tcu::algos::{apsd, closure, dense, fft, gauss, sparse, strassen, workloads};
use tcu::extmem;
use tcu::linalg::decomp::{augmented_from, back_substitute, diag_dominant, residual};
use tcu::linalg::ops::{matmul_naive, max_abs_diff};
use tcu::prelude::*;

#[test]
fn all_multiplication_algorithms_agree() {
    // Theorem 1 (both recursions), Theorem 2, naive order, weak machine,
    // systolic costing, and the host oracle must all produce one product.
    let d = 64usize;
    let mut rng = StdRng::seed_from_u64(1);
    let a = workloads::random_matrix_i64(d, d, 50, &mut rng);
    let b = workloads::random_matrix_i64(d, d, 50, &mut rng);
    let want = matmul_naive(&a, &b);

    let mut m1 = TcuMachine::model(256, 77);
    assert_eq!(dense::multiply(&mut m1, &a, &b), want);
    let mut m2 = TcuMachine::model(256, 77);
    assert_eq!(strassen::multiply_strassen(&mut m2, &a, &b), want);
    let mut m3 = TcuMachine::model(256, 77);
    assert_eq!(strassen::multiply_recursive(&mut m3, &a, &b), want);
    let mut m4 = TcuMachine::weak(256, 77);
    assert_eq!(dense::multiply(&mut m4, &a, &b), want);
    let mut m5 = TcuMachine::new(SystolicTensorUnit::new(256));
    assert_eq!(dense::multiply_naive_order(&mut m5, &a, &b), want);

    // And the cycle-level array itself.
    let mut arr = SystolicArray::new(d);
    let (c, _) = arr.multiply(&a, &b);
    assert_eq!(c, want);
}

#[test]
fn linear_system_pipeline_solves_and_costs_exactly() {
    let d = 64usize;
    let a = diag_dominant(d - 1, 9);
    let b: Vec<f64> = (0..d - 1).map(|i| (i as f64).cos()).collect();
    let mut mach = TcuMachine::model(16, 1000);
    let mut c = augmented_from(&a, &b);
    gauss::ge_forward(&mut mach, &mut c);
    let x = back_substitute(&c);
    assert!(residual(&a, &x, &b) < 1e-9);
    assert_eq!(mach.time(), gauss::ge_forward_time(d as u64, 4, 1000));
}

#[test]
fn closure_and_apsd_are_consistent() {
    // On an undirected connected graph, TC reaches everything and APSD
    // distances are finite; reachability implied by finite distance.
    let n = 32usize;
    let mut rng = StdRng::seed_from_u64(3);
    let adj = workloads::random_connected_graph(n, 0.1, &mut rng);
    let mut mach = TcuMachine::model(16, 10);
    let dist = apsd::seidel_apsd(&mut mach, &adj);
    let mut reach = adj.clone();
    closure::transitive_closure(&mut mach, &mut reach);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                assert_eq!(reach[(i, j)], 1, "connected graph: everything reachable");
                assert!(dist[(i, j)] >= 1, "distinct vertices at positive distance");
            }
        }
    }
}

#[test]
fn sparse_and_dense_products_agree_on_machine() {
    let d = 32usize;
    let mut rng = StdRng::seed_from_u64(4);
    let (da, db) = workloads::random_sparse_pair(d, 5, 5, 4, &mut rng);
    let a = sparse::CsrMatrix::from_dense(&da);
    let b = sparse::CsrMatrix::from_dense(&db);
    let mut mach = TcuMachine::model(16, 5);
    let sparse_c = sparse::multiply_tcu(&mut mach, &a, &b).to_dense();
    let mut mach2 = TcuMachine::model(16, 5);
    let dense_c = dense::multiply(&mut mach2, &da, &db);
    assert!(max_abs_diff(&sparse_c, &dense_c) < 1e-9);
    assert!(
        mach.time() < mach2.time(),
        "sparse path must exploit the sparsity"
    );
}

#[test]
fn convolution_theorem_holds_on_the_machine() {
    // dft(a) ⊙ dft(b) = dft(circular_conv(a, b)) — ties the fft module to
    // the stencil machinery's foundation.
    let n = 64usize;
    let mut rng = StdRng::seed_from_u64(5);
    let a = workloads::random_vector_c64(n, &mut rng);
    let b = workloads::random_vector_c64(n, &mut rng);
    // Host circular convolution.
    let mut conv = vec![Complex64::ZERO; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let k = (i + j) % n;
            conv[k] = conv[k].add(ai.mul(bj));
        }
    }
    let mut mach = TcuMachine::model(16, 3);
    let fa = fft::dft(&mut mach, &a);
    let fb = fft::dft(&mut mach, &b);
    let fc = fft::dft(&mut mach, &conv);
    for i in 0..n {
        assert!(fa[i].mul(fb[i]).sub(fc[i]).abs() < 1e-7, "bin {i}");
    }
}

#[test]
fn weak_trace_replay_bounds_hold_across_algorithms() {
    // Theorem 12: replayed I/Os ≤ 3 × weak-TCU time, for several
    // different algorithms' traces.
    let mut weak = TcuMachine::weak(16, 0);

    weak.enable_trace();
    let a = Matrix::from_fn(32, 32, |i, j| ((i + j) % 5) as i64);
    let _ = dense::multiply(&mut weak, &a, &a.clone());
    let t1 = weak.time();
    let ios1 = extmem::replay_trace(&weak.take_trace(), 4);
    assert!(ios1 <= 3 * t1 && ios1 > 0);

    weak.reset();
    weak.enable_trace();
    let mut g = Matrix::from_fn(16, 16, |i, j| i64::from((i + 1) % 16 == j));
    closure::transitive_closure(&mut weak, &mut g);
    let t2 = weak.time();
    let ios2 = extmem::replay_trace(&weak.take_trace(), 4);
    assert!(ios2 <= 3 * t2 && ios2 > 0);
}

#[test]
fn model_vs_systolic_costing_is_a_bounded_constant() {
    // The VAL claim as a test: same algorithm, both costings, ratio < 2.
    let d = 128usize;
    let a = Matrix::from_fn(d, d, |i, j| ((i * 3 + j) % 7) as i64);
    let b = Matrix::from_fn(d, d, |i, j| ((i + 2 * j) % 5) as i64);
    let eff = SystolicTensorUnit::new(256).effective_latency();
    let mut model = TcuMachine::model(256, eff);
    let _ = dense::multiply(&mut model, &a, &b);
    let mut cyc = TcuMachine::new(SystolicTensorUnit::new(256));
    let _ = dense::multiply(&mut cyc, &a, &b);
    let ratio = cyc.time() as f64 / model.time() as f64;
    assert!((1.0..2.0).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn stats_decompose_time_exactly() {
    let mut mach = TcuMachine::model(64, 123);
    let a = Matrix::from_fn(32, 32, |i, j| (i * j % 9) as f64);
    let _ = dense::multiply(&mut mach, &a, &a.clone());
    let s = mach.stats();
    assert_eq!(s.time(), s.scalar_ops + s.tensor_time);
    assert_eq!(
        s.tensor_time,
        s.tensor_stream_time() + s.tensor_latency_time
    );
    assert_eq!(s.tensor_latency_time, s.tensor_calls * 123);
    assert_eq!(s.tensor_stream_time(), s.tensor_rows * 8);
}
