//! Cost-invariance pins for the host-execution-layer refactor.
//!
//! The zero-copy view / tiled-kernel work is allowed to change how fast
//! the *host* executes a tensor instruction, but never what the
//! instruction *costs in the model*. These tests pin the full `Stats`
//! counters and a byte-level digest of the `TraceLog` for three
//! representative experiment workloads — E1 (Strassen), E2 (dense
//! Theorem 2), E7 (DFT) — to the exact values produced by the seed
//! `matmul_naive` execution layer. Any refactor that perturbs simulated
//! accounting (an extra charge, a reordered tensor call, a changed row
//! count) fails here with the first divergent counter.
//!
//! Re-capturing (only legitimate after an *intentional* model change):
//! `TCU_CAPTURE_BASELINE=1 cargo test --test cost_invariance -- --nocapture`
//! prints the current constants instead of asserting.

use tcu::algos::{closure, dense, fft, gauss, strassen};
use tcu::core::{Stats, TcuMachine, TraceLog};
use tcu::linalg::{Complex64, Fp61, Matrix};

/// `TraceLog::digest` hashes the seed trace schema (event tag + rows /
/// ops, little-endian FNV-1a), so the pinned values below are the exact
/// digests the seed `matmul_naive` execution layer produced — the
/// `TensorOp` upgrade must not move them.
fn trace_digest(trace: &TraceLog) -> u64 {
    trace.digest()
}

/// The five `Stats` counters plus trace length and digest — everything
/// observable about a simulated execution's accounting.
#[derive(Debug, PartialEq, Eq)]
struct Pin {
    tensor_calls: u64,
    tensor_rows: u64,
    tensor_time: u64,
    tensor_latency_time: u64,
    scalar_ops: u64,
    trace_events: usize,
    trace_digest: u64,
}

fn pin_of(stats: &Stats, trace: &TraceLog) -> Pin {
    Pin {
        tensor_calls: stats.tensor_calls,
        tensor_rows: stats.tensor_rows,
        tensor_time: stats.tensor_time,
        tensor_latency_time: stats.tensor_latency_time,
        scalar_ops: stats.scalar_ops,
        trace_events: trace.events().len(),
        trace_digest: trace_digest(trace),
    }
}

fn check(name: &str, got: &Pin, want: &Pin) {
    if std::env::var_os("TCU_CAPTURE_BASELINE").is_some() {
        println!("{name}: {got:?}");
        return;
    }
    assert_eq!(got, want, "{name}: simulated accounting diverged from seed");
}

/// The deterministic integer workload generator shared by the pins (same
/// shape as the experiment harness's `pseudo` helpers, frozen here so the
/// pins cannot drift with workload-module edits).
fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

#[test]
fn e1_strassen_accounting_pinned() {
    let mut mach = TcuMachine::model(16, 77);
    mach.enable_trace();
    let a = pseudo(64, 64, 1);
    let b = pseudo(64, 64, 2);
    let _ = strassen::multiply_strassen(&mut mach, &a, &b);
    let trace = mach.take_trace();
    let got = pin_of(mach.stats(), &trace);
    let want = Pin {
        tensor_calls: 2401,
        tensor_rows: 9604,
        tensor_time: 223_293,
        tensor_latency_time: 184_877,
        scalar_ops: 205_920,
        trace_events: 2745,
        trace_digest: 2_006_890_368_983_787_374,
    };
    check("e1_strassen", &got, &want);
}

#[test]
fn e2_dense_accounting_pinned() {
    let mut mach = TcuMachine::model(16, 1000);
    mach.enable_trace();
    let a = pseudo(64, 64, 3);
    let b = pseudo(64, 64, 4);
    let _ = dense::multiply(&mut mach, &a, &b);
    let trace = mach.take_trace();
    let got = pin_of(mach.stats(), &trace);
    let want = Pin {
        tensor_calls: 256,
        tensor_rows: 16_384,
        tensor_time: 321_536,
        tensor_latency_time: 256_000,
        scalar_ops: 61_440,
        trace_events: 496,
        trace_digest: 11_155_911_134_592_380_965,
    };
    check("e2_dense", &got, &want);
}

#[test]
fn e4_gauss_accounting_pinned() {
    let mut mach = TcuMachine::model(16, 55);
    mach.enable_trace();
    let mut x = Matrix::from_fn(64, 64, |i, j| {
        // Diagonally dominant over F_p so the no-pivot scheme never hits
        // a zero pivot.
        if i == j {
            Fp61::new(1 + (i as u64 * 131 + j as u64 * 31) % 89)
        } else {
            Fp61::new((i as u64 * 131 + j as u64 * 31 + 7) % 89)
        }
    });
    gauss::ge_forward(&mut mach, &mut x);
    let trace = mach.take_trace();
    let got = pin_of(mach.stats(), &trace);
    let want = Pin {
        tensor_calls: 120,
        tensor_rows: 4960,
        tensor_time: 26_440,
        tensor_latency_time: 6600,
        scalar_ops: 41_632,
        trace_events: 241,
        trace_digest: 7_179_844_610_916_943_285,
    };
    check("e4_gauss", &got, &want);
}

#[test]
fn e5_closure_accounting_pinned() {
    let mut mach = TcuMachine::model(16, 21);
    mach.enable_trace();
    let mut d = Matrix::from_fn(64, 64, |i, j| {
        i64::from((i * 67 + j * 29 + (i * j) % 13) % 7 == 0)
    });
    closure::transitive_closure(&mut mach, &mut d);
    let trace = mach.take_trace();
    let got = pin_of(mach.stats(), &trace);
    let want = Pin {
        tensor_calls: 240,
        tensor_rows: 14_400,
        tensor_time: 62_640,
        tensor_latency_time: 5040,
        scalar_ops: 178_688,
        trace_events: 481,
        trace_digest: 13_192_882_950_631_958_147,
    };
    check("e5_closure", &got, &want);
}

#[test]
fn e7_dft_accounting_pinned() {
    let mut mach = TcuMachine::model(16, 33);
    mach.enable_trace();
    let n = 256usize;
    let x: Vec<Complex64> = (0..n)
        .map(|t| Complex64::root_of_unity(n, (t * t % n) as i64))
        .collect();
    let _ = fft::dft(&mut mach, &x);
    let trace = mach.take_trace();
    let got = pin_of(mach.stats(), &trace);
    let want = Pin {
        tensor_calls: 4,
        tensor_rows: 256,
        tensor_time: 1156,
        tensor_latency_time: 132,
        scalar_ops: 2368,
        trace_events: 9,
        trace_digest: 3_216_342_104_721_461_981,
    };
    check("e7_dft", &got, &want);
}
