//! The paper as a test suite: every theorem's time bound asserted as an
//! inequality `measured ≤ C · bound` at several parameter points, with a
//! fixed constant per theorem. These are the guards that keep the
//! algorithms inside their proved complexity classes as the code evolves
//! (the experiment binaries measure shapes; these tests enforce them).

use rand::{rngs::StdRng, SeedableRng};
use tcu::algos::{
    apsd, closure, dense, fft, gauss, intmul, poly, scan, stencil, strassen, workloads,
};
use tcu::linalg::decomp::{augmented_from, diag_dominant};
use tcu::prelude::*;

fn sqrt_m(m: usize) -> f64 {
    (m as f64).sqrt()
}

/// Theorem 1: `T(n) ≤ C·(n/m)^{ω₀}(m + ℓ)` for the Strassen recursion
/// (ω₀ = log₄ 7), plus the addition term the paper absorbs.
#[test]
fn theorem_1_strassen_bound() {
    let omega0 = (7f64).ln() / (4f64).ln();
    for (d, m, l) in [
        (64usize, 16usize, 0u64),
        (128, 16, 1000),
        (256, 256, 50_000),
    ] {
        let a = Matrix::from_fn(d, d, |i, j| ((i + j) % 7) as i64);
        let b = Matrix::from_fn(d, d, |i, j| ((i * 2 + j) % 5) as i64);
        let mut mach = TcuMachine::model(m, l);
        let _ = strassen::multiply_strassen(&mut mach, &a, &b);
        let n = (d * d) as f64;
        let bound = (n / m as f64).powf(omega0) * (m as u64 + l) as f64
            + 6.0 * m as f64 * (n / m as f64).powf(omega0);
        assert!(
            (mach.time() as f64) <= 1.5 * bound,
            "d={d} m={m} l={l}: {} > 1.5·{bound}",
            mach.time()
        );
    }
}

/// Theorem 2: `T(n) ≤ C·(n^{3/2}/√m + (n/m)·ℓ)` — and the exact form.
#[test]
fn theorem_2_dense_bound() {
    for (d, m, l) in [
        (64usize, 16usize, 0u64),
        (128, 64, 5_000),
        (256, 256, 1_000_000),
    ] {
        let a = Matrix::from_fn(d, d, |i, j| ((3 * i + j) % 11) as i64);
        let b = Matrix::from_fn(d, d, |i, j| ((i + 7 * j) % 13) as i64);
        let mut mach = TcuMachine::model(m, l);
        let _ = dense::multiply(&mut mach, &a, &b);
        let n = (d * d) as f64;
        let bound = n.powf(1.5) / sqrt_m(m) + n / m as f64 * l as f64;
        assert!((mach.time() as f64) <= 2.5 * bound, "d={d} m={m} l={l}");
        // Lower direction: the semiring floor.
        assert!((mach.time() as f64) >= n.powf(1.5) / sqrt_m(m));
    }
}

/// Theorem 4: `T ≤ C·(n^{3/2}/√m + (n/m)ℓ + n√m)`.
#[test]
fn theorem_4_gauss_bound() {
    for (d, m, l) in [(64usize, 16usize, 0u64), (128, 64, 10_000)] {
        let a = diag_dominant(d - 1, 5);
        let rhs = vec![1.0f64; d - 1];
        let mut c = augmented_from(&a, &rhs);
        let mut mach = TcuMachine::model(m, l);
        gauss::ge_forward(&mut mach, &mut c);
        let n = (d * d) as f64;
        let bound = n.powf(1.5) / sqrt_m(m) + n / m as f64 * l as f64 + n * sqrt_m(m);
        assert!((mach.time() as f64) <= 4.0 * bound, "d={d} m={m} l={l}");
    }
}

/// Theorem 5: `T ≤ C·(n³/√m + (n²/m)ℓ + n²√m)` (n = vertices).
#[test]
fn theorem_5_closure_bound() {
    let mut rng = StdRng::seed_from_u64(1);
    for (n, m, l) in [(64usize, 16usize, 0u64), (128, 256, 20_000)] {
        let mut d = workloads::random_digraph(n, 0.1, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        closure::transitive_closure(&mut mach, &mut d);
        let nf = n as f64;
        let bound = nf.powi(3) / sqrt_m(m) + nf * nf / m as f64 * l as f64 + nf * nf * sqrt_m(m);
        assert!((mach.time() as f64) <= 7.0 * bound, "n={n} m={m} l={l}");
    }
}

/// Theorem 6: `T ≤ C·(n²/m)^{3/2}(m + ℓ)·log n` (standard-recursion ω₀).
#[test]
fn theorem_6_apsd_bound() {
    let mut rng = StdRng::seed_from_u64(2);
    for (n, m, l) in [(48usize, 16usize, 100u64), (96, 64, 10_000)] {
        let adj = workloads::random_connected_graph(n, 0.1, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = apsd::seidel_apsd(&mut mach, &adj);
        let nf = n as f64;
        let bound =
            (nf * nf / m as f64).powf(1.5).max(1.0) * (m as u64 + l) as f64 * nf.log2().ceil();
        assert!((mach.time() as f64) <= 16.0 * bound, "n={n} m={m} l={l}");
    }
}

/// Theorem 7: `T ≤ C·(n + ℓ)·log_m n`.
#[test]
fn theorem_7_dft_bound() {
    let mut rng = StdRng::seed_from_u64(3);
    for (n, m, l) in [
        (1usize << 10, 16usize, 0u64),
        (1 << 14, 256, 5_000),
        (1 << 12, 4096, 100),
    ] {
        let x = workloads::random_vector_c64(n, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = fft::dft(&mut mach, &x);
        let logm = ((n as f64).ln() / (m as f64).ln()).max(1.0);
        let bound = (n as u64 + l) as f64 * logm;
        assert!((mach.time() as f64) <= 10.0 * bound, "n={n} m={m} l={l}");
    }
}

/// Theorem 8: `T ≤ C·(n·log_m k + ℓ·log k)` — with the implementation's
/// padded-transform constant.
#[test]
fn theorem_8_stencil_bound() {
    let mut rng = StdRng::seed_from_u64(4);
    let w = stencil::StencilWeights::heat(0.1, 0.1);
    for (d, k, m, l) in [(32usize, 8usize, 256usize, 100u64), (64, 16, 1024, 5_000)] {
        let grid = workloads::random_grid(d, &mut rng);
        let mut mach = TcuMachine::model(m, l);
        let _ = stencil::run_tcu(&mut mach, &grid, &w, k);
        let n = (d * d) as f64;
        let logm = ((k as f64).ln() / (m as f64).ln()).max(1.0);
        let logk = (k as f64).log2().max(1.0);
        // k² log_m k covers the Lemma 2 phase when k² ≳ n/tile-count.
        let bound = (n + (k * k) as f64) * logm.max(1.0) + l as f64 * logk;
        assert!(
            (mach.time() as f64) <= 600.0 * bound,
            "d={d} k={k}: {} > 600·{bound}",
            mach.time()
        );
    }
}

/// Theorem 9: `T ≤ C·(n′²/√m + (n′/m)·ℓ)` for n′ ≥ m limbs.
#[test]
fn theorem_9_intmul_bound() {
    let mut rng = StdRng::seed_from_u64(5);
    for (limbs, m, l) in [(256usize, 16usize, 0u64), (1024, 256, 50_000)] {
        let a = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
        let b = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
        let mut mach = TcuMachine::model(m, l);
        let _ = intmul::mul_tcu_schoolbook(&mut mach, &a, &b);
        let np = limbs as f64;
        let bound = np * np / sqrt_m(m) + np / m as f64 * l as f64;
        assert!((mach.time() as f64) <= 4.0 * bound, "limbs={limbs} m={m}");
    }
}

/// Theorem 11: `T ≤ C·(p·n/√m + p·√m + (n/m)·ℓ)` — and the exact form.
#[test]
fn theorem_11_poly_bound() {
    let mut rng = StdRng::seed_from_u64(6);
    for (n, p, m, l) in [(1024usize, 64usize, 16usize, 0u64), (4096, 128, 256, 9_000)] {
        let coeffs: Vec<Fp61> = (0..n)
            .map(|_| Fp61::new(rand::Rng::gen(&mut rng)))
            .collect();
        let points: Vec<Fp61> = (0..p)
            .map(|_| Fp61::new(rand::Rng::gen(&mut rng)))
            .collect();
        let mut mach = TcuMachine::model(m, l);
        let _ = poly::batch_eval(&mut mach, &coeffs, &points);
        let (nf, pf) = (n as f64, p as f64);
        let bound = pf * nf / sqrt_m(m) + pf * sqrt_m(m) + nf / m as f64 * l as f64;
        assert!((mach.time() as f64) <= 5.0 * bound, "n={n} p={p} m={m}");
    }
}

/// §5: a strong-model algorithm runs on the weak machine with constant
/// slowdown when ℓ = O(m) — the paper's simulation remark, across three
/// different algorithms.
#[test]
fn weak_model_constant_slowdown_when_latency_at_most_m() {
    let (m, l) = (64usize, 64u64); // ℓ = m
    let d = 64usize;

    // Dense multiplication.
    let a = Matrix::from_fn(d, d, |i, j| ((i + j) % 9) as i64);
    let b = Matrix::from_fn(d, d, |i, j| ((2 * i + j) % 7) as i64);
    let mut strong = TcuMachine::model(m, l);
    let _ = dense::multiply(&mut strong, &a, &b);
    let mut weak = TcuMachine::weak(m, l);
    let _ = dense::multiply(&mut weak, &a, &b);
    assert!(
        weak.time() <= 3 * strong.time(),
        "dense: {} vs {}",
        weak.time(),
        strong.time()
    );

    // DFT.
    let x = vec![Complex64::ONE; 4096];
    let mut strong = TcuMachine::model(m, l);
    let _ = fft::dft(&mut strong, &x);
    let mut weak = TcuMachine::weak(m, l);
    let _ = fft::dft(&mut weak, &x);
    assert!(
        weak.time() <= 3 * strong.time(),
        "dft: {} vs {}",
        weak.time(),
        strong.time()
    );

    // Prefix scan.
    let xs: Vec<i64> = (0..10_000).collect();
    let mut strong = TcuMachine::model(m, l);
    let _ = scan::prefix_sum(&mut strong, &xs);
    let mut weak = TcuMachine::weak(m, l);
    let _ = scan::prefix_sum(&mut weak, &xs);
    assert!(
        weak.time() <= 3 * strong.time(),
        "scan: {} vs {}",
        weak.time(),
        strong.time()
    );
}

/// Scan/reduction (related work [9]): `T ≤ C·(n + ℓ·log_m n)`.
#[test]
fn scan_bound() {
    for (n, m, l) in [(4096usize, 16usize, 0u64), (65536, 256, 100_000)] {
        let xs: Vec<i64> = (0..n as i64).collect();
        let mut mach = TcuMachine::model(m, l);
        let _ = scan::prefix_sum(&mut mach, &xs);
        let levels = ((n as f64).ln() / (m as f64).ln()).ceil().max(1.0) + 1.0;
        let bound = 3.0 * n as f64 + l as f64 * levels;
        assert!((mach.time() as f64) <= 3.0 * bound, "n={n} m={m} l={l}");
    }
}
