//! Pin: the deferred scheduling runtime must be a *no-op in the model*
//! on the canonical E2 workload — the exact workload whose eager
//! accounting `tests/cost_invariance.rs` pins byte-for-byte against the
//! seed simulator.
//!
//! At the native block size nothing can coalesce, so the scheduled
//! blocked multiplication must (a) equal the unscheduled oracle
//! element-for-element, (b) charge exactly the `Stats` the seed pins
//! (same counters the eager path produces), and (c) get all of its
//! host-side win from the pack cache — one pack per strip per run —
//! without perturbing a single simulated counter. A second scenario
//! checks the ablation direction: a sub-footprint recording coalesces
//! back to exactly the native charges.

use tcu::algos::dense;
use tcu::core::TcuMachine;
use tcu::linalg::{ops::matmul_naive, Matrix};

/// The cost_invariance workload generator, frozen here for the same
/// reason: pins must not drift with workload-module edits.
fn pseudo(r: usize, c: usize, seed: i64) -> Matrix<i64> {
    Matrix::from_fn(r, c, |i, j| {
        ((i as i64 * 131 + j as i64 * 31 + seed).wrapping_mul(48271) >> 5) % 97 - 48
    })
}

#[test]
fn scheduled_e2_matches_the_unscheduled_oracle_and_the_seed_pin() {
    // Same machine and inputs as cost_invariance::e2_dense.
    let a = pseudo(64, 64, 3);
    let b = pseudo(64, 64, 4);

    let mut eager = TcuMachine::model(16, 1000);
    let want = dense::multiply(&mut eager, &a, &b);

    let mut sched = TcuMachine::model(16, 1000);
    sched.executor_mut().enable_pack_cache(16);
    let got = dense::multiply_scheduled(&mut sched, &a, &b);

    // Element-for-element against the unscheduled oracle (and the host
    // reference, so both paths can't be wrong together).
    assert_eq!(got, want);
    assert_eq!(got, matmul_naive(&a, &b));

    // The full Stats of the scheduled run equal the eager run's — the
    // same counters cost_invariance pins to the seed values, restated
    // here so a scheduler change that perturbs accounting fails with
    // the divergent counter named.
    assert_eq!(sched.stats(), eager.stats());
    assert_eq!(sched.stats().tensor_calls, 256);
    assert_eq!(sched.stats().tensor_rows, 16_384);
    assert_eq!(sched.stats().tensor_time, 321_536);
    assert_eq!(sched.stats().tensor_latency_time, 256_000);
    assert_eq!(sched.stats().scalar_ops, 61_440);

    // Host-side effect only: 16 strips, each packed exactly once and
    // re-used for all 16 block columns.
    let cache = sched.executor().pack_cache_stats().expect("cache on");
    assert_eq!((cache.lookups, cache.misses, cache.hits), (256, 16, 240));
}

#[test]
fn two_stage_pipeline_charges_exactly_twice_the_pinned_e2_run() {
    // One versioned graph holding M = A·B then C = M·B at the native
    // block size, on the E2-pinned machine: the planned stream must
    // charge exactly 2× the seed-pinned E2 counters (two back-to-back
    // blocked multiplications, nothing coalescable), stage 2 must
    // consume stage 1's output through generation-staged reads, and the
    // pack cache must retire stage-1 strips (M's strips are packed at
    // their post-write generation).
    use tcu::core::TensorOp;
    use tcu::sched::{ExecEnv, OpGraph, OperandRef, Scheduler};

    let d = 64usize;
    let s = 4usize;
    let a = pseudo(d, d, 3);
    let b = pseudo(d, d, 4);
    let mut g = OpGraph::new();
    let ab = g.buffer("A", d, d);
    let bb = g.buffer("B", d, d);
    let mb = g.buffer("M", d, d);
    let cb = g.buffer("C", d, d);
    let q = d / s;
    for (src, dst) in [(ab, mb), (mb, cb)] {
        for j in 0..q {
            for k in 0..q {
                g.record(
                    TensorOp::mul_acc(d, s),
                    OperandRef::new(src, 0, k * s, d, s),
                    OperandRef::new(bb, k * s, j * s, s, s),
                    OperandRef::new(dst, 0, j * s, d, s),
                );
            }
        }
    }
    let mut mach = TcuMachine::model(16, 1000);
    mach.executor_mut().enable_pack_cache(2 * q);
    let plan = Scheduler::new().plan(&g, mach.unit());
    let (mut m, mut c) = (Matrix::<i64>::zeros(d, d), Matrix::<i64>::zeros(d, d));
    let mut env = ExecEnv::new(&g);
    env.bind_input(ab, a.view());
    env.bind_input(bb, b.view());
    env.bind_output(mb, m.view_mut());
    env.bind_output(cb, c.view_mut());
    plan.run(&mut mach, &mut env);

    let want_m = matmul_naive(&a, &b);
    assert_eq!(m, want_m);
    assert_eq!(c, matmul_naive(&want_m, &b));
    // 2× the cost_invariance E2 pins (the CPU summation is not part of
    // the recorded stream, so only tensor counters double).
    assert_eq!(mach.stats().tensor_calls, 2 * 256);
    assert_eq!(mach.stats().tensor_rows, 2 * 16_384);
    assert_eq!(mach.stats().tensor_time, 2 * 321_536);
    assert_eq!(mach.stats().tensor_latency_time, 2 * 256_000);
    // Strip traffic: A's 16 strips pack once each for stage 1; M's 16
    // strips pack once each at their written generation for stage 2.
    let cache = mach.executor().pack_cache_stats().expect("cache on");
    assert_eq!((cache.lookups, cache.misses), (512, 32));
}

#[test]
fn narrow_recording_coalesces_to_the_pinned_native_charges() {
    // Record the same product in quarter-footprint blocks: coalescing
    // must rebuild the native invocation grid and land on the *same*
    // pinned Stats as the eager native-block flow.
    let a = pseudo(64, 64, 3);
    let b = pseudo(64, 64, 4);
    let mut eager = TcuMachine::model(16, 1000);
    let want = dense::multiply(&mut eager, &a, &b);
    let mut narrow = TcuMachine::model(16, 1000);
    let got = dense::multiply_scheduled_blocked(&mut narrow, &a, &b, 2);
    assert_eq!(got, want);
    assert_eq!(narrow.stats(), eager.stats());
}
