//! Signal processing on the tensor unit: spectral analysis via the
//! Theorem 7 DFT and a 2-D heat-diffusion simulation via the Theorem 8
//! stencil machinery.
//!
//! ```sh
//! cargo run --release --example signal_processing
//! ```

use tcu::algos::{fft, stencil};
use tcu::prelude::*;

fn main() {
    let (m, latency) = (256usize, 1_000u64);

    // --- Spectral analysis: find the tones hidden in a noisy signal. ---
    let n = 1 << 14;
    let tones = [(440.0, 1.0), (1_320.0, 0.6), (3_521.0, 0.3)]; // bin, amplitude
    let signal: Vec<Complex64> = (0..n)
        .map(|t| {
            let x: f64 = tones
                .iter()
                .map(|&(f, a)| a * (2.0 * std::f64::consts::PI * f * t as f64 / n as f64).cos())
                .sum();
            // Deterministic pseudo-noise.
            let noise = (((t as u64).wrapping_mul(0x9e3779b97f4a7c15) >> 40) as f64
                / (1u64 << 24) as f64
                - 0.5)
                * 0.2;
            Complex64::new(x + noise, 0.0)
        })
        .collect();

    let mut mach = TcuMachine::model(m, latency);
    let spectrum = fft::dft(&mut mach, &signal);
    let mut peaks: Vec<(usize, f64)> = spectrum[..n / 2]
        .iter()
        .map(|z| z.abs())
        .enumerate()
        .collect();
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("[Theorem 7] DFT of a {n}-sample signal");
    println!(
        "  simulated time : {} (host radix-2 FFT charge: {})",
        mach.time(),
        fft::fft_host_time(n as u64)
    );
    println!(
        "  tensor calls   : {} (one per recursion level — batched latency)",
        mach.stats().tensor_calls
    );
    println!("  top spectral peaks (bin, magnitude):");
    for &(bin, mag) in peaks.iter().take(3) {
        println!("    bin {bin:>5}  |X| = {mag:.1}");
    }
    let found: Vec<usize> = peaks.iter().take(3).map(|&(b, _)| b).collect();
    for &(f, _) in &tones {
        assert!(
            found.contains(&(f as usize)),
            "tone at bin {f} must be recovered"
        );
    }
    println!("  all injected tones recovered: OK");

    // --- Heat diffusion: k sweeps of the discretized heat equation in one
    //     convolution pass (Lemmas 1–2). ---
    let d = 128usize;
    let k = 32usize;
    let w = stencil::StencilWeights::heat(0.15, 0.15);
    // A hot square in a cold room (toroidal boundary).
    let grid = Matrix::from_fn(d, d, |i, j| {
        if (48..80).contains(&i) && (48..80).contains(&j) {
            100.0
        } else {
            0.0
        }
    });

    let mut mach2 = TcuMachine::model(4096, latency);
    let after = stencil::run_tcu(&mut mach2, &grid, &w, k);
    let mut direct_mach = TcuMachine::model(4096, latency);
    let direct = stencil::run_direct(&mut direct_mach, &grid, &w, k);
    let err = tcu::linalg::ops::max_abs_diff(&after, &direct);

    let centre = after[(64, 64)];
    let corner = after[(0, 0)];
    println!("\n[Theorem 8] heat equation: {k} sweeps of a {d}x{d} grid in one convolution pass");
    println!("  centre temperature : {centre:.2}  (was 100.0)");
    println!("  corner temperature : {corner:.4} (was 0.0)");
    println!(
        "  simulated time     : {} (direct k-sweep charge: {})",
        mach2.time(),
        direct_mach.time()
    );
    println!("  max |tcu - direct| : {err:.2e}");
    assert!(err < 1e-6);
    // Mass conservation on the torus (heat weights sum to 1).
    let mass_before: f64 = grid.as_slice().iter().sum();
    let mass_after: f64 = after.as_slice().iter().sum();
    println!(
        "  heat conserved     : {:.6} -> {:.6}",
        mass_before, mass_after
    );
}
