//! Quickstart: build an (m, ℓ)-TCU, multiply matrices on it, and read the
//! simulated-time meter.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tcu::algos::{dense, strassen};
use tcu::prelude::*;

fn main() {
    // An NVIDIA-Volta-flavoured machine: the programming model exposes
    // 16×16 multiplications, so m = 256 (§3.1 of the paper); latency is
    // a free parameter — pick something TPU-ish to make it visible.
    let (m, latency) = (256usize, 1_000u64);
    let mut mach = TcuMachine::model(m, latency);
    println!(
        "(m, l)-TCU: sqrt(m) = {}, l = {}",
        mach.sqrt_m(),
        mach.latency()
    );

    // Two 512×512 operands.
    let d = 512usize;
    let a = Matrix::from_fn(d, d, |i, j| ((i * 31 + j * 17) % 7) as f64 - 3.0);
    let b = Matrix::from_fn(d, d, |i, j| ((i + 5 * j) % 5) as f64 - 2.0);

    // Theorem 2: blocked multiplication with tall-operand streaming.
    let c = dense::multiply(&mut mach, &a, &b);
    println!("\n[Theorem 2] {d}x{d} dense multiply");
    println!("  simulated time : {}", mach.time());
    println!("  tensor calls   : {}", mach.stats().tensor_calls);
    println!("  rows streamed  : {}", mach.stats().tensor_rows);
    println!(
        "  latency share  : {:.2}%",
        100.0 * mach.stats().tensor_latency_time as f64 / mach.time() as f64
    );
    println!(
        "  closed form    : {}",
        dense::multiply_time(d as u64, 16, latency)
    );
    println!("  c[7][9]        : {}", c[(7, 9)]);

    // The same product on the weak (§5) machine: square calls only, so
    // the latency is paid (d/sqrt(m))^3 times instead of (d/sqrt(m))^2.
    let mut weak = TcuMachine::weak(m, latency);
    let _ = dense::multiply(&mut weak, &a, &b);
    println!("\n[Weak model] same multiply, square calls only");
    println!(
        "  simulated time : {} ({:.2}x the strong model)",
        weak.time(),
        weak.time() as f64 / mach.time() as f64
    );
    println!("  tensor calls   : {}", weak.stats().tensor_calls);

    // Theorem 1: Strassen recursion with the tensor unit as base case.
    let mut smach = TcuMachine::model(m, latency);
    let cs = strassen::multiply_strassen(&mut smach, &a, &b);
    assert_eq!(c, cs, "both algorithms compute the same product");
    println!("\n[Theorem 1] Strassen recursion (omega_0 = log4 7)");
    println!("  simulated time : {}", smach.time());
    println!(
        "  tensor calls   : {} (vs {} for 8-way recursion: 7^t vs 8^t)",
        smach.stats().tensor_calls,
        8u64.pow(5)
    );

    // Cycle-accurate costing: swap the costing policy, keep the algorithm.
    let mut cyc = TcuMachine::new(SystolicTensorUnit::new(m));
    let _ = dense::multiply(&mut cyc, &a, &b);
    println!("\n[Systolic costing] same algorithm, counted array cycles");
    println!(
        "  simulated time : {} ({:.3}x the model charge)",
        cyc.time(),
        cyc.time() as f64 / mach.time() as f64
    );
}
