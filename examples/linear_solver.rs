//! Solving dense linear systems with the tensor unit: the Theorem 4
//! blocked Gaussian elimination as the forward phase of a direct solver,
//! with residual verification — the classical scientific-computing
//! workload the paper's §4.2 targets.
//!
//! ```sh
//! cargo run --release --example linear_solver
//! ```

use tcu::algos::gauss;
use tcu::linalg::decomp::{
    augmented_from, back_substitute, diag_dominant, ge_forward_host, residual,
};
use tcu::prelude::*;

fn main() {
    let (m, latency) = (64usize, 500u64);
    let d = 512usize; // system of d−1 equations

    // A diagonally dominant system (no-pivoting elimination is stable).
    let a = diag_dominant(d - 1, 77);
    let b: Vec<f64> = (0..d - 1).map(|i| (i as f64 * 0.37).sin() * 4.0).collect();
    let c0 = augmented_from(&a, &b);

    // Forward phase on the TCU (blocked, kernel D on the tensor unit).
    let mut mach = TcuMachine::model(m, latency);
    let mut c = c0.clone();
    gauss::ge_forward(&mut mach, &mut c);
    let x = back_substitute(&c);
    let r = residual(&a, &x, &b);

    println!(
        "[Theorem 4] blocked Gaussian elimination, {}x{} system",
        d - 1,
        d - 1
    );
    println!("  simulated time  : {}", mach.time());
    println!(
        "  closed form     : {}",
        gauss::ge_forward_time(d as u64, 8, latency)
    );
    println!("  tensor calls    : {}", mach.stats().tensor_calls);
    println!(
        "  latency share   : {:.2}%",
        100.0 * mach.stats().tensor_latency_time as f64 / mach.time() as f64
    );
    println!("  residual |Ax-b| : {r:.3e}");
    assert!(r < 1e-8, "solver must actually solve the system");

    // Compare with the unblocked Figure 2 loop on the CPU.
    let mut host = c0;
    let host_ops = ge_forward_host(&mut host);
    println!("\n  unblocked CPU charge : {host_ops}");
    println!(
        "  TCU speedup          : {:.2}x",
        host_ops as f64 / mach.time() as f64
    );
    println!(
        "  blocked == unblocked : {}",
        tcu::linalg::ops::approx_eq_rel(&host, &c, 1e-9)
    );

    // Theorem 4's optimality remark: GE cost tracks the Theorem 2
    // multiplication cost once sqrt(n) >= m.
    let mm = tcu::algos::dense::multiply_time(d as u64, 8, latency);
    println!(
        "\n  Theorem 2 MM time    : {mm} (GE/MM = {:.3})",
        mach.time() as f64 / mm as f64
    );
}
