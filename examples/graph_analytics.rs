//! Graph analytics on the tensor unit: reachability (Theorem 5) and
//! degrees of separation (Theorem 6) over a synthetic social network —
//! the "can matrix hardware serve graph workloads?" scenario from the
//! paper's introduction.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use rand::{rngs::StdRng, SeedableRng};
use tcu::algos::{apsd, closure, workloads};
use tcu::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let (m, latency) = (256usize, 500u64);

    // --- Reachability: who can influence whom (directed follows). ---
    let n = 256usize;
    let mut follows = workloads::random_digraph(n, 1.8 / n as f64, &mut rng);
    let mut mach = TcuMachine::model(m, latency);
    let before_edges: i64 = follows.as_slice().iter().sum();
    closure::transitive_closure(&mut mach, &mut follows);
    let reachable_pairs: i64 = follows.as_slice().iter().sum();
    println!("[Theorem 5] transitive closure of a {n}-vertex follow graph");
    println!("  direct follow edges : {before_edges}");
    println!("  reachable pairs     : {reachable_pairs}");
    println!(
        "  simulated time      : {} (unblocked CPU loop: {})",
        mach.time(),
        closure::host_closure_time(n as u64)
    );
    println!("  tensor calls        : {}", mach.stats().tensor_calls);

    // Cross-check one assertion of the closure against the definition.
    let u = 0usize;
    let reach_u = (0..n).filter(|&v| follows[(u, v)] == 1).count();
    println!("  user 0 reaches {reach_u} of {} users", n);

    // --- Degrees of separation: Seidel APSD on the friendship graph. ---
    let n2 = 128usize;
    let friends = workloads::random_connected_graph(n2, 2.0 / n2 as f64, &mut rng);
    let mut mach2 = TcuMachine::model(m, latency);
    let dist = apsd::seidel_apsd(&mut mach2, &friends);
    let (mut total, mut diameter, mut pairs) = (0i64, 0i64, 0i64);
    for i in 0..n2 {
        for j in 0..n2 {
            if i != j {
                total += dist[(i, j)];
                diameter = diameter.max(dist[(i, j)]);
                pairs += 1;
            }
        }
    }
    println!("\n[Theorem 6] Seidel APSD on a {n2}-vertex friendship graph");
    println!("  average separation : {:.2}", total as f64 / pairs as f64);
    println!("  diameter           : {diameter}");
    println!(
        "  simulated time     : {} (BFS-all-pairs baseline: {})",
        mach2.time(),
        apsd::bfs_apsd_time(n2 as u64)
    );
    println!("  tensor calls       : {}", mach2.stats().tensor_calls);

    // Oracle check: Seidel agrees with BFS.
    assert_eq!(dist, apsd::bfs_apsd_host(&friends));
    println!("  verified against BFS all-pairs: OK");

    // --- Triangle counting (clustering): A²⊙A on the unit. ---
    let mut mach3 = TcuMachine::model(m, latency);
    let triangles = tcu::algos::triangles::count_triangles(&mut mach3, &friends);
    println!("\n[§1.1/[5]] triangle count via A²⊙A");
    println!("  triangles      : {triangles}");
    println!("  simulated time : {}", mach3.time());
    assert_eq!(
        triangles,
        tcu::algos::triangles::count_triangles_host(&friends)
    );
    println!("  verified against triple enumeration: OK");
}
