//! Exact arithmetic on the tensor unit: cryptography-sized integer
//! products (Theorems 9–10) and batch polynomial evaluation over a prime
//! field (Theorem 11) — a Reed–Solomon-style encoding sweep.
//!
//! ```sh
//! cargo run --release --example bigint_polynomial
//! ```

use rand::{rngs::StdRng, SeedableRng};
use tcu::algos::{intmul, poly, workloads};
use tcu::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(4096);
    let (m, latency) = (256usize, 2_000u64);

    // --- 65536-bit integer product (4096 limbs of 16 bits). ---
    let limbs = 4096usize;
    let a = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
    let b = intmul::BigNat::from_limbs(workloads::random_limbs(limbs, &mut rng));
    println!("[Theorems 9-10] multiplying two {}-bit integers", a.bits());

    let mut school = TcuMachine::model(m, latency);
    let p1 = intmul::mul_tcu_schoolbook(&mut school, &a, &b);
    let mut kara = TcuMachine::model(m, latency);
    let p2 = intmul::mul_tcu_karatsuba(&mut kara, &a, &b);
    assert_eq!(p1, p2);
    assert_eq!(p1, intmul::mul_host(&a, &b));
    println!("  product bits        : {}", p1.bits());
    println!(
        "  schoolbook-TCU time : {} ({} tensor calls)",
        school.time(),
        school.stats().tensor_calls
    );
    println!(
        "  karatsuba-TCU time  : {} ({} tensor calls)",
        kara.time(),
        kara.stats().tensor_calls
    );
    println!(
        "  host CPU schoolbook : {}",
        intmul::mul_host_time(limbs as u64, limbs as u64)
    );
    println!("  first hex digits    : {}…", &p1.to_hex()[..24]);

    // --- Reed–Solomon-flavoured encoding: evaluate a message polynomial
    //     of degree 4095 over F_{2^61-1} at 512 evaluation points. ---
    let n = 4096usize;
    let points_n = 512usize;
    let message: Vec<Fp61> = (0..n)
        .map(|i| Fp61::new((i as u64).wrapping_mul(0x9e3779b9) + 7))
        .collect();
    // Distinct evaluation points 1, g, g², … for a generator-ish g.
    let g = Fp61::new(3);
    let mut pts = Vec::with_capacity(points_n);
    let mut acc = Fp61::ONE;
    for _ in 0..points_n {
        pts.push(acc);
        acc = Scalar::mul(acc, g);
    }

    let mut mach = TcuMachine::model(m, latency);
    let codeword = poly::batch_eval(&mut mach, &message, &pts);
    assert_eq!(
        codeword,
        poly::horner_host(&message, &pts),
        "exact over F_p"
    );
    println!(
        "\n[Theorem 11] degree-{} polynomial at {} points over F_p",
        n - 1,
        points_n
    );
    println!(
        "  simulated time : {} (Horner baseline: {})",
        mach.time(),
        poly::horner_time(n as u64, points_n as u64)
    );
    println!("  tensor calls   : {}", mach.stats().tensor_calls);
    println!(
        "  speedup        : {:.2}x (→ sqrt(m) = {} as n grows)",
        poly::horner_time(n as u64, points_n as u64) as f64 / mach.time() as f64,
        mach.sqrt_m()
    );
    println!(
        "  codeword[0..4] : {:?}",
        codeword[..4].iter().map(|v| v.value()).collect::<Vec<_>>()
    );
}
